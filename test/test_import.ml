(* Tests for the topology importer (DOT subset + edge lists), the
   random-graph generators behind the zoo, and the Topospec wiring:
   round-trip properties, the malformed-input rejection corpus, lenient
   repairs, serialization interop, and unknown-kind suggestions. *)

let check = Alcotest.check

let ok_exn = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected import error: %s" msg

(* Name-based canonical form: node kinds plus the unordered cable
   multiset. Insensitive to node-id permutations and to the orientation
   in which each cable was declared (Serial.to_string preserves both, so
   it cannot compare graphs across an import round trip). *)
let canonical g =
  let name i = (Graph.node g i).Node.name in
  let lines = ref [] in
  Array.iter
    (fun (n : Node.t) ->
      let tag = if Node.is_switch n then "sw" else "term" in
      lines := Printf.sprintf "%s %s" tag n.Node.name :: !lines)
    (Graph.nodes g);
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.Channel.id with
      | Some r when r < c.Channel.id -> ()
      | _ ->
        let a = name c.Channel.src and b = name c.Channel.dst in
        let a, b = if a <= b then (a, b) else (b, a) in
        lines := Printf.sprintf "cable %s %s" a b :: !lines)
    (Graph.channels g);
  String.concat "\n" (List.sort compare !lines)

let sample_graph seed =
  let rng = Rng.create seed in
  Testutil.random_graph ~switches:(6 + (seed mod 5)) ~inter_links:(12 + (seed mod 6)) rng

(* ------------------------------------------------------------------ *)
(* Round trips                                                          *)
(* ------------------------------------------------------------------ *)

let test_dot_roundtrip_qcheck =
  Testutil.qtest ~count:40 "write_dot/parse_dot round-trips strict" Testutil.seed_gen (fun seed ->
      let g = sample_graph seed in
      let text = Topo_import.write_dot g in
      let imported = ok_exn (Topo_import.parse_dot ~mode:Topo_import.Strict text) in
      imported.Topo_import.diags = []
      && canonical imported.Topo_import.graph = canonical g)

let test_edge_list_roundtrip_qcheck =
  Testutil.qtest ~count:40 "write_edge_list/parse_edge_list round-trips the switch level"
    Testutil.seed_gen (fun seed ->
      let g = sample_graph seed in
      let text = Topo_import.write_edge_list g in
      let imported =
        ok_exn
          (Topo_import.parse_edge_list ~mode:Topo_import.Strict ~terminals_per_switch:0 text)
      in
      Topo_import.write_edge_list imported.Topo_import.graph = text)

let test_dot_mult_and_terminals () =
  let text =
    "graph g {\n  h0 [kind=terminal];\n  h1 [kind=terminal];\n  a -- b [mult=2];\n  b -- c;\n  c -- a;\n  h0 -- a;\n  h1 -- c;\n}\n"
  in
  let imported = ok_exn (Topo_import.parse_dot ~mode:Topo_import.Strict text) in
  let g = imported.Topo_import.graph in
  check Alcotest.int "switches" 3 (Graph.num_switches g);
  check Alcotest.int "declared terminals kept" 2 (Graph.num_terminals g);
  (* 4 trunk cables (one doubled) + 2 terminal cables = 12 channels *)
  check Alcotest.int "channels" 12 (Graph.num_channels g);
  check Alcotest.(result unit string) "valid" (Ok ()) (Graph.validate g)

let test_digraph_pairing () =
  let text = "digraph g {\n  a -> b; b -> a;\n  b -> c; c -> b;\n  c -> a; a -> c;\n}\n" in
  let imported = ok_exn (Topo_import.parse_dot ~mode:Topo_import.Strict text) in
  let g = imported.Topo_import.graph in
  check Alcotest.int "three cables plus terminals" (3 * 2 + 6) (Graph.num_channels g);
  check Alcotest.int "synthetic terminals" 3 (Graph.num_terminals g)

let test_synthetic_terminals_only_when_none_declared () =
  let with_decl = "graph g {\n  t [kind=terminal];\n  a -- b;\n  t -- a;\n}\n" in
  let imported = ok_exn (Topo_import.parse_dot with_decl) in
  check Alcotest.int "no synthetic next to declared" 1
    (Graph.num_terminals imported.Topo_import.graph);
  let bare = "graph g { a -- b; }" in
  let imported = ok_exn (Topo_import.parse_dot ~terminals_per_switch:2 bare) in
  check Alcotest.int "two synthetic per switch" 4 (Graph.num_terminals imported.Topo_import.graph)

(* ------------------------------------------------------------------ *)
(* Malformed-input rejection corpus                                     *)
(* ------------------------------------------------------------------ *)

let dot_strict text = Topo_import.parse_dot ~mode:Topo_import.Strict text

let edge_strict text = Topo_import.parse_edge_list ~mode:Topo_import.Strict text

let rejection_corpus =
  [
    ("self loop", dot_strict, "graph g { a -- a; a -- b; }", "self loop on a");
    ("duplicate edge", dot_strict, "graph g { a -- b; a -- b; }", "duplicate edge a -- b (first at line 1)");
    ("disconnected", dot_strict, "graph g { a -- b; c -- d; }", "disconnected: 2 components");
    ("truncated", dot_strict, "graph g { a -- b;", "unexpected end of input (missing '}')");
    ("trailing input", dot_strict, "graph g { a -- b; } x", "trailing input after '}'");
    ("subgraph", dot_strict, "graph g { subgraph s { a -- b; } }", "subgraph is not supported");
    ("stray char", dot_strict, "graph g { a -- b; @ }", "unexpected character '@'");
    ("unterminated string", dot_strict, "graph g { \"a -- b; }", "unterminated string");
    ("unterminated comment", dot_strict, "graph g { /* a -- b; }", "unterminated comment");
    ("op mismatch", dot_strict, "graph g { a -> b; }", "edge operator in a graph (use --)");
    ( "unpaired arc",
      dot_strict,
      "digraph g { a -> b; b -> a; a -> c; c -> b; b -> c; }",
      "unpaired directed edge between a and c (1 forward, 0 reverse)" );
    ("bad mult attr", dot_strict, "graph g { a -- b [mult=zero]; }", "bad mult attribute \"zero\"");
    ("bad multiplicity", edge_strict, "a b\nb c two\n", "line 2: bad multiplicity \"two\"");
    ("arity", edge_strict, "a b\nlonely\n", "want <a> <b> [mult]");
    ("empty input", edge_strict, "# nothing here\n", "no nodes in input");
  ]

let test_rejections () =
  List.iter
    (fun (name, parse, text, needle) ->
      match parse text with
      | Ok _ -> Alcotest.failf "%s: accepted malformed input" name
      | Error msg ->
        if not (Testutil.contains msg needle) then
          Alcotest.failf "%s: error %S does not mention %S" name msg needle)
    rejection_corpus

let test_lenient_repairs () =
  let text =
    "graph g {\n\
    \  a -- a;\n\
    \  a -- b;\n\
    \  a -- b;\n\
    \  b -- c;\n\
    \  c -- a;\n\
    \  x -- y;\n\
     }\n"
  in
  let imported = ok_exn (Topo_import.parse_dot ~mode:Topo_import.Lenient text) in
  check Alcotest.int "three repairs" 3 (List.length imported.Topo_import.diags);
  check Alcotest.int "island dropped" 2 imported.Topo_import.dropped_nodes;
  let g = imported.Topo_import.graph in
  check Alcotest.int "largest component kept" 3 (Graph.num_switches g);
  let messages = List.map (fun (d : Topo_import.diag) -> d.Topo_import.message) imported.Topo_import.diags in
  List.iter
    (fun needle ->
      if not (List.exists (fun m -> Testutil.contains m needle) messages) then
        Alcotest.failf "no repair mentions %S in: %s" needle (String.concat " | " messages))
    [ "self loop"; "duplicate edge"; "largest component" ];
  (* line-anchored repairs carry their source line *)
  List.iter
    (fun (d : Topo_import.diag) ->
      if Testutil.contains d.Topo_import.message "self loop" && d.Topo_import.line <> 2 then
        Alcotest.failf "self loop diag at line %d" d.Topo_import.line)
    imported.Topo_import.diags

let test_sniff () =
  check Alcotest.bool "dot by extension" true
    (Topo_import.sniff ~path:"x.dot" "whatever" = Topo_import.Dot);
  check Alcotest.bool "edges by extension" true
    (Topo_import.sniff ~path:"x.edges" "graph {}" = Topo_import.Edge_list);
  check Alcotest.bool "dot by content" true
    (Topo_import.sniff "// c\ndigraph g {}" = Topo_import.Dot);
  check Alcotest.bool "edge list by content" true (Topo_import.sniff "a b\n" = Topo_import.Edge_list)

(* ------------------------------------------------------------------ *)
(* Serial interop (imported graphs survive serialize/deserialize)       *)
(* ------------------------------------------------------------------ *)

let test_serial_interop_qcheck =
  Testutil.qtest ~count:25 "imported graphs survive Serial round-trips with identical CDG builds"
    Testutil.seed_gen (fun seed ->
      let g = sample_graph seed in
      let imported = ok_exn (Topo_import.parse_dot (Topo_import.write_dot g)) in
      let g1 = imported.Topo_import.graph in
      let g2 = Result.get_ok (Serial.of_string (Serial.to_string g1)) in
      (* canonical form is stable across the round trip *)
      canonical g1 = canonical g2
      &&
      (* and the serialized twin routes to an identical CSR CDG *)
      let route g =
        match Harness.Runs.run_named "dfsssp" g with
        | Ok ft -> ft
        | Error msg -> Alcotest.failf "dfsssp refused: %s" msg
      in
      let cdg_edges ft =
        let store = Result.get_ok (Routing.Ftable.to_store ft) in
        Deadlock.Cdg.num_edges (Deadlock.Cdg.of_store store)
      in
      let f1 = route g1 and f2 = route g2 in
      Routing.Ftable.num_layers f1 = Routing.Ftable.num_layers f2
      && cdg_edges f1 = cdg_edges f2)

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)
(* ------------------------------------------------------------------ *)

let regular_net_degree g expected =
  Array.for_all
    (fun sw -> Graph.degree g sw >= expected)
    (Graph.switches g)

let test_jellyfish_qcheck =
  Testutil.qtest ~count:25 "jellyfish: connected, valid, deterministic" Testutil.seed_gen
    (fun seed ->
      let make () =
        Topo_jellyfish.make ~switches:(8 + (seed mod 8)) ~ports:6 ~net_ports:3
          ~rng:(Rng.create seed)
      in
      let g = make () in
      Graph.connected g
      && Graph.validate g = Ok ()
      && Graph.num_terminals g = 3 * Graph.num_switches g
      && canonical (make ()) = canonical g)

let test_xpander_qcheck =
  Testutil.qtest ~count:25 "xpander: connected, valid, regular, deterministic" Testutil.seed_gen
    (fun seed ->
      let d = 3 + (seed mod 2) and lift = 3 + (seed mod 3) in
      let make () = Topo_xpander.make ~net_degree:d ~lift ~rng:(Rng.create seed) () in
      let g = make () in
      Graph.connected g
      && Graph.validate g = Ok ()
      && Graph.num_switches g = (d + 1) * lift
      && regular_net_degree g d
      && canonical (make ()) = canonical g)

let test_generator_invalid_args () =
  Alcotest.check_raises "jellyfish net_ports > ports"
    (Invalid_argument "Topo_jellyfish.make: net_ports > ports") (fun () ->
      ignore (Topo_jellyfish.make ~switches:8 ~ports:3 ~net_ports:4 ~rng:(Rng.create 1)));
  Alcotest.check_raises "xpander degree too small"
    (Invalid_argument "Topo_xpander.make: net_degree < 2") (fun () ->
      ignore (Topo_xpander.make ~net_degree:1 ~lift:3 ~rng:(Rng.create 1) ()))

(* ------------------------------------------------------------------ *)
(* Topospec wiring                                                      *)
(* ------------------------------------------------------------------ *)

let spec_error spec =
  match Harness.Topospec.parse spec with
  | Ok _ -> Alcotest.failf "spec %S unexpectedly parsed" spec
  | Error msg -> msg

let test_topospec_suggestions () =
  let msg = spec_error "trous:4x4" in
  check Alcotest.bool "offending token" true (Testutil.contains msg "\"trous\"");
  check Alcotest.bool "suggestion" true (Testutil.contains msg "did you mean \"torus\"?");
  check Alcotest.bool "known kinds listed" true (Testutil.contains msg "jellyfish");
  let msg = spec_error "jellyfih:10,6,3" in
  check Alcotest.bool "jellyfish suggestion" true
    (Testutil.contains msg "did you mean \"jellyfish\"?");
  (* nothing remotely close: no suggestion offered *)
  let msg = spec_error "zzzzzzzzzzzz:1" in
  check Alcotest.bool "no wild guess" false (Testutil.contains msg "did you mean")

let test_topospec_generators () =
  (match Harness.Topospec.parse "jellyfish:10,6,3:3" with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.int "jellyfish switches" 10 (Graph.num_switches t.Harness.Topospec.graph);
    check Alcotest.int "jellyfish terminals" 30 (Graph.num_terminals t.Harness.Topospec.graph));
  match Harness.Topospec.parse "xpander:3,4,2:5" with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.int "xpander switches" 16 (Graph.num_switches t.Harness.Topospec.graph);
    check Alcotest.int "xpander terminals" 32 (Graph.num_terminals t.Harness.Topospec.graph)

let test_topospec_import () =
  let dir = Filename.temp_file "topoimp" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "t.dot" in
  let oc = open_out path in
  output_string oc "graph g { a -- b; b -- c; c -- a; a -- a; }\n";
  close_out oc;
  (match Harness.Topospec.parse ("dot:" ^ path) with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.int "imported switches" 3 (Graph.num_switches t.Harness.Topospec.graph);
    check Alcotest.bool "repair counted in description" true
      (Testutil.contains t.Harness.Topospec.description "1 repair"));
  Sys.remove path;
  Unix.rmdir dir

let () =
  Alcotest.run "topo_import"
    [
      ( "roundtrip",
        [
          test_dot_roundtrip_qcheck;
          test_edge_list_roundtrip_qcheck;
          Alcotest.test_case "mult and terminals" `Quick test_dot_mult_and_terminals;
          Alcotest.test_case "digraph pairing" `Quick test_digraph_pairing;
          Alcotest.test_case "synthetic terminals" `Quick test_synthetic_terminals_only_when_none_declared;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "malformed corpus" `Quick test_rejections;
          Alcotest.test_case "lenient repairs" `Quick test_lenient_repairs;
          Alcotest.test_case "sniff" `Quick test_sniff;
        ] );
      ("serial", [ test_serial_interop_qcheck ]);
      ( "generators",
        [
          test_jellyfish_qcheck;
          test_xpander_qcheck;
          Alcotest.test_case "invalid args" `Quick test_generator_invalid_args;
        ] );
      ( "topospec",
        [
          Alcotest.test_case "suggestions" `Quick test_topospec_suggestions;
          Alcotest.test_case "generator specs" `Quick test_topospec_generators;
          Alcotest.test_case "import specs" `Quick test_topospec_import;
        ] );
    ]
