(* Tests for the fabric controller service (DESIGN.md §14): wire
   protocol roundtrips, framing against hostile input, explicit
   backpressure under pipelined writes, and the acceptance soak — 64
   concurrent clients querying routes while a writer churns the
   topology, with every reply checked for internal consistency against
   a single certified epoch. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let torus dims = fst (Topo_torus.torus ~dims ~terminals_per_switch:1)

let sock_counter = ref 0

(* A fresh, non-existing unix socket path per test. *)
let fresh_sock_path () =
  incr sock_counter;
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fabsvc_test_%d_%d.sock" (Unix.getpid ()) !sock_counter)
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  path

let config ?(queue_depth = 64) path =
  {
    Service.Server.default_config with
    addr = Service.Proto.Unix_path path;
    queue_depth;
    tick_s = 0.005;
    trace_capacity = 128;
  }

(* Start a server on a fresh socket, run [f addr server], always join the
   serve thread and unlink the socket. [f] must end the loop (a shutdown
   request or [Server.stop]). *)
let with_server ?queue_depth g f =
  let path = fresh_sock_path () in
  match Service.Server.create ~config:(config ?queue_depth path) g with
  | Error msg -> Alcotest.failf "server create: %s" msg
  | Ok server ->
    let th = Thread.create Service.Server.serve server in
    Fun.protect
      ~finally:(fun () ->
        Service.Server.stop server;
        Thread.join th;
        (try Unix.unlink path with Unix.Unix_error _ -> ()))
      (fun () -> f (Service.Proto.Unix_path path) server)

let connect addr =
  match Service.Client.connect addr with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected client error: %s" msg

(* ------------------------------------------------------------------ *)
(* Protocol: request JSON roundtrips                                    *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Service.Proto.request_of_json (Service.Proto.request_to_json req) with
      | Ok req' -> check Alcotest.bool "roundtrip" true (req = req')
      | Error msg -> Alcotest.failf "roundtrip failed: %s" msg)
    [
      Service.Proto.Ping;
      Service.Proto.Route { src = 16; dst = 31 };
      Service.Proto.Event (Fabric.Event.Link_down 3);
      Service.Proto.Event (Fabric.Event.Switch_drain 7);
      Service.Proto.Stats;
      Service.Proto.Trace None;
      Service.Proto.Trace (Some 10);
      Service.Proto.Analyze;
      Service.Proto.Epoch_info;
      Service.Proto.Shutdown;
    ]

let test_request_rejects_garbage () =
  List.iter
    (fun s ->
      let j = Result.get_ok (Obs.Json.of_string s) in
      check Alcotest.bool s true (Result.is_error (Service.Proto.request_of_json j)))
    [
      {|{"op":"explode"}|};
      {|{"nop":"ping"}|};
      {|{"op":"route","src":1}|};
      {|{"op":"route","src":"a","dst":2}|};
      {|{"op":"event"}|};
      {|{"op":"event","event":"explode 3"}|};
      {|[1,2,3]|};
      {|"ping"|};
    ]

(* ------------------------------------------------------------------ *)
(* Framing                                                              *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Service.Proto.write_frame a {|{"op":"ping"}|};
      Service.Proto.write_frame a "";
      (match Service.Proto.read_frame b with
      | Ok (Some p) -> check Alcotest.string "payload" {|{"op":"ping"}|} p
      | Ok None -> Alcotest.fail "eof"
      | Error msg -> Alcotest.fail msg);
      (match Service.Proto.read_frame b with
      | Ok (Some p) -> check Alcotest.string "empty payload" "" p
      | Ok None -> Alcotest.fail "eof"
      | Error msg -> Alcotest.fail msg);
      (* Clean EOF at a frame boundary is [Ok None]... *)
      Unix.close a;
      (match Service.Proto.read_frame b with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "phantom frame"
      | Error msg -> Alcotest.failf "clean EOF became an error: %s" msg))

let test_frame_truncated_and_oversize () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* A header promising more bytes than ever arrive: truncation error. *)
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 64l;
  ignore (Unix.write a header 0 4);
  ignore (Unix.write_substring a "short" 0 5);
  Unix.close a;
  (match Service.Proto.read_frame b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated frame accepted");
  Unix.close b;
  (* An oversize frame is refused without allocating the payload. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Service.Proto.write_frame a (String.make 256 'x');
  (match Service.Proto.read_frame ~max_frame:64 b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversize frame accepted");
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Server basics: every op end to end over one socket                   *)
(* ------------------------------------------------------------------ *)

let test_server_end_to_end () =
  let g = torus [| 4; 4 |] in
  with_server g (fun addr server ->
      let mgr = Service.Server.manager server in
      let c = connect addr in
      Fun.protect ~finally:(fun () -> Service.Client.close c) (fun () ->
          (* ping: epoch 1 after create *)
          check Alcotest.int "epoch after create" 1 (ok (Service.Client.ping c));
          (* route: the reply must agree with the manager's own tables *)
          let terms = Graph.terminals (Fabric.Manager.graph mgr) in
          let src = terms.(0) and dst = terms.(Array.length terms - 1) in
          let r = ok (Service.Client.route c ~src ~dst) in
          check Alcotest.int "route epoch" 1 r.Service.Client.epoch;
          let tables = Fabric.Manager.tables mgr in
          (match Routing.Ftable.path tables ~src ~dst with
          | None -> Alcotest.fail "manager has no path for the queried pair"
          | Some p ->
            check
              Alcotest.(list int)
              "path matches the active tables" (Array.to_list p)
              (Array.to_list r.Service.Client.path));
          check Alcotest.int "layer matches" (Routing.Ftable.layer tables ~src ~dst)
            r.Service.Client.layer;
          check Alcotest.int "layers matches" (Routing.Ftable.num_layers tables)
            r.Service.Client.layers;
          (* route: non-terminal ids are refused, not served *)
          check Alcotest.bool "non-terminal refused" true
            (Result.is_error (Service.Client.route c ~src:0 ~dst));
          (* a terminal to itself is the trivial empty route, not an error *)
          let self = ok (Service.Client.route c ~src ~dst:src) in
          check Alcotest.int "self pair has no hops" 0 (Array.length self.Service.Client.path);
          (* event: a cable down applies and bumps the epoch *)
          let cable = (Degrade.switch_cables (Fabric.Manager.graph mgr)).(0) in
          (match ok (Service.Client.event c (Fabric.Event.Link_down cable)) with
          | Service.Client.Applied { epoch; applied; batch_size; _ } ->
            check Alcotest.bool "applied" true applied;
            check Alcotest.int "epoch bumped" 2 epoch;
            check Alcotest.int "lone event, batch of one" 1 batch_size
          | Service.Client.Busy _ -> Alcotest.fail "unloaded server claimed busy");
          (* the re-routed tables serve the same pair consistently *)
          let r2 = ok (Service.Client.route c ~src ~dst) in
          check Alcotest.int "route epoch after event" 2 r2.Service.Client.epoch;
          (* analyze: the active tables are certified *)
          let certified, _report = ok (Service.Client.analyze c) in
          check Alcotest.bool "certified" true certified;
          (* epoch history mirrors the manager *)
          let hist = ok (Service.Client.epoch_history c) in
          check Alcotest.int "history length" 2 (List.length hist);
          (* stats: a parseable object counting this very conversation *)
          let stats = ok (Service.Client.stats c) in
          (match Obs.Json.member "service" stats with
          | Some _ -> ()
          | None -> Alcotest.fail "stats reply lacks the service registry");
          (* trace: spans from the event's manager step *)
          let spans = ok (Service.Client.trace c) in
          check Alcotest.bool "spans captured" true (List.length spans > 0);
          (* shutdown: acknowledged, then the loop exits *)
          ok (Service.Client.shutdown c)));
  ()

let test_server_refuses_existing_socket () =
  let path = fresh_sock_path () in
  let touched = open_out path in
  close_out touched;
  Fun.protect
    ~finally:(fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      match Service.Server.create ~config:(config path) (torus [| 3; 3 |]) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "existing socket path clobbered")

let test_server_rejects_bad_requests () =
  with_server (torus [| 3; 3 |]) (fun addr _server ->
      let c = connect addr in
      Fun.protect ~finally:(fun () -> Service.Client.close c) (fun () ->
          let is_error_reply raw =
            match Service.Client.call_raw c raw with
            | Error msg -> Alcotest.failf "transport error: %s" msg
            | Ok reply -> (
              match Obs.Json.of_string reply with
              | Error msg -> Alcotest.failf "unparseable reply: %s" msg
              | Ok j -> (
                match Option.bind (Obs.Json.member "status" j) Obs.Json.to_str with
                | Some "error" -> ()
                | s ->
                  Alcotest.failf "expected an error reply, got status %s"
                    (Option.value ~default:"<none>" s)))
          in
          is_error_reply "not json at all";
          is_error_reply {|{"op":"ping"} trailing|};
          is_error_reply {|{"op":"explode"}|};
          is_error_reply {|{"op":"route","src":0,"dst":0}|};
          (* the connection survived four refusals *)
          check Alcotest.int "still serving" 1 (ok (Service.Client.ping c))))

(* ------------------------------------------------------------------ *)
(* Backpressure: pipelined events against a tiny admission queue        *)
(* ------------------------------------------------------------------ *)

let test_backpressure_sheds_load () =
  let g = torus [| 4; 4 |] in
  with_server ~queue_depth:2 g (fun addr _server ->
      let cable = (Degrade.switch_cables g).(0) in
      (* Hand-roll the connection: all 8 event frames must leave in ONE
         write so they land in the server's buffer in one readable tick,
         before any drain runs. *)
      let path = match addr with Service.Proto.Unix_path p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          let n = 8 in
          let burst = Buffer.create 512 in
          for i = 0 to n - 1 do
            let payload =
              Printf.sprintf {|{"op":"event","event":"down %d","id":%d}|} cable i
            in
            Buffer.add_bytes burst (Service.Proto.frame payload)
          done;
          let b = Buffer.to_bytes burst in
          let written = Unix.write fd b 0 (Bytes.length b) in
          check Alcotest.int "burst left in one write" (Bytes.length b) written;
          let ok_ids = ref [] and busy_ids = ref [] in
          for _ = 1 to n do
            match Service.Proto.read_frame fd with
            | Error msg -> Alcotest.failf "read reply: %s" msg
            | Ok None -> Alcotest.fail "server closed mid-burst"
            | Ok (Some reply) -> (
              let j = Result.get_ok (Obs.Json.of_string reply) in
              let id =
                match Option.bind (Obs.Json.member "id" j) Obs.Json.to_int with
                | Some id -> id
                | None -> Alcotest.fail "reply lost its correlation id"
              in
              match Option.bind (Obs.Json.member "status" j) Obs.Json.to_str with
              | Some "ok" -> ok_ids := id :: !ok_ids
              | Some "busy" -> busy_ids := id :: !busy_ids
              | s ->
                Alcotest.failf "unexpected status %s" (Option.value ~default:"<none>" s))
          done;
          (* Exactly queue_depth events were admitted; the overflow was
             shed with explicit busy replies — nothing hung, nothing was
             dropped silently. *)
          check Alcotest.int "admitted = queue depth" 2 (List.length !ok_ids);
          check Alcotest.int "overflow shed as busy" (n - 2) (List.length !busy_ids);
          check
            Alcotest.(list int)
            "first frames won admission" [ 0; 1 ]
            (List.sort compare !ok_ids);
          (* The shed client retries and succeeds once the queue drains. *)
          Service.Proto.write_frame fd {|{"op":"event","event":"up 999999"}|};
          (match Service.Proto.read_frame fd with
          | Ok (Some reply) -> (
            let j = Result.get_ok (Obs.Json.of_string reply) in
            match Option.bind (Obs.Json.member "status" j) Obs.Json.to_str with
            | Some "ok" -> ()
            | s -> Alcotest.failf "retry not admitted: %s" (Option.value ~default:"<none>" s))
          | Ok None -> Alcotest.fail "server closed on retry"
          | Error msg -> Alcotest.failf "retry: %s" msg)))

(* ------------------------------------------------------------------ *)
(* Soak: 64 concurrent clients under churn                              *)
(* ------------------------------------------------------------------ *)

(* Assert [path] is a head-to-tail channel walk [src -> dst] in [g].
   Channel ids are stable across down/up events, so paths served from
   ANY epoch must be valid walks in the pristine graph. *)
let check_walk g ~src ~dst path =
  let die fmt = Printf.ksprintf failwith fmt in
  if Array.length path = 0 then die "empty path %d -> %d" src dst;
  let nc = Graph.num_channels g in
  Array.iter (fun c -> if c < 0 || c >= nc then die "channel %d out of range" c) path;
  let first = Graph.channel g path.(0) in
  if first.Channel.src <> src then die "path starts at node %d, not src %d" first.Channel.src src;
  let last = Graph.channel g path.(Array.length path - 1) in
  if last.Channel.dst <> dst then die "path ends at node %d, not dst %d" last.Channel.dst dst;
  for i = 0 to Array.length path - 2 do
    let a = Graph.channel g path.(i) and b = Graph.channel g path.(i + 1) in
    if a.Channel.dst <> b.Channel.src then
      die "broken walk at hop %d: channel %d ends at %d, channel %d starts at %d" i a.Channel.id
        a.Channel.dst b.Channel.id b.Channel.src
  done

let test_soak_64_clients_under_churn () =
  let g = torus [| 4; 4 |] in
  let num_clients = 64 and queries_per_client = 25 in
  with_server g (fun addr server ->
      let terms = Graph.terminals g in
      let nt = Array.length terms in
      (* (epoch, src, dst) -> (layers, layer, path): replies for the same
         pair served from the same epoch must be identical, whichever
         thread received them — no reply may mix two epochs. *)
      let seen : (int * int * int, int * int * int array) Hashtbl.t = Hashtbl.create 4096 in
      let seen_mu = Mutex.create () in
      let failures = ref [] in
      let fail_mu = Mutex.create () in
      let record_failure msg =
        Mutex.lock fail_mu;
        failures := msg :: !failures;
        Mutex.unlock fail_mu
      in
      let replies = Atomic.make 0 in
      let reader tid =
        match Service.Client.connect addr with
        | Error msg -> record_failure (Printf.sprintf "reader %d connect: %s" tid msg)
        | Ok c ->
          Fun.protect ~finally:(fun () -> Service.Client.close c) (fun () ->
              let rng = Rng.create (0x50AC + tid) in
              for q = 1 to queries_per_client do
                let src = terms.(Rng.int rng nt) in
                let dst = ref terms.(Rng.int rng nt) in
                while !dst = src do
                  dst := terms.(Rng.int rng nt)
                done;
                let dst = !dst in
                match Service.Client.route c ~src ~dst with
                | Error msg ->
                  record_failure (Printf.sprintf "reader %d query %d: %s" tid q msg)
                | Ok r ->
                  Atomic.incr replies;
                  (try
                     if r.Service.Client.epoch < 1 then failwith "epoch < 1";
                     if r.Service.Client.layer < 0 || r.Service.Client.layer >= r.Service.Client.layers
                     then failwith "layer out of range";
                     check_walk g ~src ~dst r.Service.Client.path;
                     let key = (r.Service.Client.epoch, src, dst) in
                     let entry =
                       (r.Service.Client.layers, r.Service.Client.layer, r.Service.Client.path)
                     in
                     Mutex.lock seen_mu;
                     let prior = Hashtbl.find_opt seen key in
                     (match prior with
                     | None -> Hashtbl.add seen key entry
                     | Some _ -> ());
                     Mutex.unlock seen_mu;
                     match prior with
                     | Some p when p <> entry ->
                       failwith "same (epoch, src, dst) answered two different ways"
                     | _ -> ()
                   with Failure msg ->
                     record_failure
                       (Printf.sprintf "reader %d query %d (%d->%d): %s" tid q src dst msg))
              done)
      in
      let writer () =
        match Service.Client.connect addr with
        | Error msg -> record_failure ("writer connect: " ^ msg)
        | Ok c ->
          Fun.protect ~finally:(fun () -> Service.Client.close c) (fun () ->
              (* Downs and ups only: channel ids stay stable, so reader
                 walk checks against the pristine graph remain sound. *)
              let schedule =
                Fabric.Schedule.generate g ~rng:(Rng.create 99) ~events:12 ()
              in
              List.iter
                (fun ev ->
                  let rec push retries =
                    match Service.Client.event c ev with
                    | Error msg -> record_failure ("writer event: " ^ msg)
                    | Ok (Service.Client.Busy _) when retries > 0 ->
                      Thread.delay 0.002;
                      push (retries - 1)
                    | Ok (Service.Client.Busy _) -> record_failure "writer starved out"
                    | Ok (Service.Client.Applied _) -> ()
                  in
                  push 100;
                  Thread.delay 0.001)
                schedule)
      in
      let threads =
        Thread.create writer ()
        :: List.init num_clients (fun tid -> Thread.create reader tid)
      in
      List.iter Thread.join threads;
      (match !failures with
      | [] -> ()
      | msgs ->
        Alcotest.failf "%d inconsistent replies; first: %s" (List.length msgs)
          (List.nth msgs (List.length msgs - 1)));
      check Alcotest.int "every query answered" (num_clients * queries_per_client)
        (Atomic.get replies);
      (* The churn was real: the fabric moved past its initial epoch. *)
      check Alcotest.bool "epochs advanced under churn" true
        (Fabric.Manager.epoch (Service.Server.manager server) > 1);
      (* And the server counted what it served. *)
      let m = Service.Server.metrics server in
      check Alcotest.bool "route queries counted" true
        (Obs.Counter.value m.Service.Metrics.route_queries >= num_clients * queries_per_client);
      let c = connect addr in
      Fun.protect ~finally:(fun () -> Service.Client.close c) (fun () ->
          ok (Service.Client.shutdown c)));
  ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "proto",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_request_rejects_garbage;
          Alcotest.test_case "frame roundtrip + clean EOF" `Quick test_frame_roundtrip;
          Alcotest.test_case "truncation and oversize refused" `Quick test_frame_truncated_and_oversize;
        ] );
      ( "server",
        [
          Alcotest.test_case "every op end to end" `Quick test_server_end_to_end;
          Alcotest.test_case "existing socket path refused" `Quick test_server_refuses_existing_socket;
          Alcotest.test_case "bad requests answered, not fatal" `Quick test_server_rejects_bad_requests;
        ] );
      ( "backpressure",
        [ Alcotest.test_case "pipelined overflow shed as busy" `Quick test_backpressure_sheds_load ] );
      ( "soak",
        [ Alcotest.test_case "64 clients under churn" `Slow test_soak_64_clients_under_churn ] );
    ]
