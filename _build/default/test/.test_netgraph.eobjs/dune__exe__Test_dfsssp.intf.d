test/test_dfsssp.mli:
