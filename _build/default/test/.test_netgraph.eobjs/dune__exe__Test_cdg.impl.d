test/test_cdg.ml: Acyclic Alcotest App Array Cdg Channel Cycle Deadlock Graph Heuristic Layers List Online Pk_order QCheck2 QCheck_alcotest Result Rng Routing Testutil Topo_random Topo_ring
