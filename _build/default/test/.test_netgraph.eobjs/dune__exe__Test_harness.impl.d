test/test_harness.ml: Alcotest Array Filename Float Graph Harness Lazy List Printf Result Rng Serial String Sys Testutil Topo_ring Topo_torus Topo_tree Unix
