test/test_simulator.mli:
