test/testutil.ml: String
