test/test_cdg.mli:
