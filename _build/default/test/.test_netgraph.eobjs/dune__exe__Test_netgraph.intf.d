test/test_netgraph.mli:
