(* Shared helpers for the test suites. *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0
