(* Route a user-supplied fabric: read the plain-text topology format
   (switch / terminal / link lines — the shape OpenSM would discover),
   route it with a chosen algorithm, print per-route diagnostics, and
   export Graphviz for visual inspection.

   Run with:
     dune exec examples/custom_topology.exe               (built-in demo fabric)
     dune exec examples/custom_topology.exe -- fabric.txt dfsssp out.dot *)

open Netgraph

(* An irregular demo fabric: a fat-tree island bridged to a ring — the
   "grown over time" machine of the paper's introduction. *)
let demo = "\
# two-level island\n\
switch leaf0\n\
switch leaf1\n\
switch spine0\n\
switch spine1\n\
link leaf0 spine0\n\
link leaf0 spine1\n\
link leaf1 spine0\n\
link leaf1 spine1\n\
# legacy ring segment bolted on\n\
switch ring0\n\
switch ring1\n\
switch ring2\n\
link ring0 ring1\n\
link ring1 ring2\n\
link ring2 ring0\n\
link leaf1 ring0 2\n\
# nodes\n\
terminal n0 leaf0\n\
terminal n1 leaf0\n\
terminal n2 leaf1\n\
terminal n3 ring0\n\
terminal n4 ring1\n\
terminal n5 ring2\n"

let () =
  let text =
    if Array.length Sys.argv > 1 then In_channel.with_open_text Sys.argv.(1) In_channel.input_all
    else demo
  in
  let algorithm = if Array.length Sys.argv > 2 then Sys.argv.(2) else "dfsssp" in
  let dot_out = if Array.length Sys.argv > 3 then Some Sys.argv.(3) else None in
  match Serial.of_string text with
  | Error msg ->
    Printf.eprintf "topology parse error: %s\n" msg;
    exit 2
  | Ok fabric -> (
    (match Graph.validate fabric with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "invalid fabric: %s\n" msg;
      exit 2);
    Format.printf "fabric: %a@." Graph.pp_stats fabric;
    match Dfsssp.Registry.find algorithm with
    | None ->
      Printf.eprintf "unknown algorithm %S; known: %s\n" algorithm
        (String.concat ", " Dfsssp.Registry.names);
      exit 2
    | Some alg -> (
      match alg.Dfsssp.Registry.run fabric with
      | Error msg ->
        Printf.eprintf "%s refused this fabric: %s\n" alg.Dfsssp.Registry.name msg;
        exit 1
      | Ok ft ->
        (match Dfsssp.Verify.report ft with
        | Ok r -> Format.printf "%s: %a@." alg.Dfsssp.Registry.name Dfsssp.Verify.pp_report r
        | Error msg ->
          Printf.eprintf "verification failed: %s\n" msg;
          exit 1);
        (* per-pair route listing for small fabrics *)
        let terminals = Graph.terminals fabric in
        if Array.length terminals <= 8 then begin
          Format.printf "@.routes:@.";
          Routing.Ftable.iter_pairs ft (fun ~src ~dst path ->
              let names = Path.node_sequence fabric path in
              Format.printf "  %-4s -> %-4s  vl%d  %s@." (Graph.node fabric src).Node.name
                (Graph.node fabric dst).Node.name
                (Routing.Ftable.layer ft ~src ~dst)
                (String.concat " > "
                   (Array.to_list (Array.map (fun v -> (Graph.node fabric v).Node.name) names))))
        end;
        (match dot_out with
        | Some path ->
          Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Serial.to_dot fabric));
          Format.printf "@.wrote %s@." path
        | None -> ())))
