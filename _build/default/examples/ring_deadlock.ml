(* The paper's Fig. 2, live: on a 5-switch ring where every node sends to
   the node two hops clockwise, SSSP routes every message clockwise and
   the buffer dependency cycle wedges the network. The packet-level
   simulator reproduces the deadlock; DFSSSP's virtual-lane assignment
   dissolves it on the same fabric with the same routes.

   Run with:  dune exec examples/ring_deadlock.exe *)

open Netgraph

let describe_cdg name ft =
  let cyclic = not (Dfsssp.Verify.deadlock_free ft) in
  Format.printf "  %-8s channel dependency graph %s@." name
    (if cyclic then "has a cycle (deadlock possible)" else "is acyclic per lane (deadlock-free)")

let simulate name ft ~num_vls ~flows =
  let config = { Simulator.Flitsim.default_config with num_vls; buffer_slots = 2 } in
  Format.printf "  %-8s %a@." name Simulator.Flitsim.pp_outcome (Simulator.Flitsim.run ~config ft ~flows)

let () =
  let ring = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  Format.printf "fabric: 5-switch ring, one node per switch@.";
  let terminals = Graph.terminals ring in
  (* each node sends a burst to the node two hops clockwise *)
  let flows = Array.init 5 (fun i -> (terminals.(i), terminals.((i + 2) mod 5), 100)) in
  Format.printf "pattern: every node sends 100 packets 2 hops clockwise@.@.";

  Format.printf "static analysis:@.";
  let sssp =
    match Routing.Sssp.route ring with
    | Ok ft -> ft
    | Error e -> failwith e
  in
  describe_cdg "SSSP" sssp;
  let dfsssp =
    match Dfsssp.route ring with
    | Ok ft -> ft
    | Error e -> failwith (Dfsssp.error_to_string e)
  in
  describe_cdg "DFSSSP" dfsssp;
  Format.printf "  DFSSSP uses %d virtual lanes@.@." (Routing.Ftable.num_layers dfsssp);

  Format.printf "packet-level simulation (2 buffer slots per lane):@.";
  simulate "SSSP" sssp ~num_vls:1 ~flows;
  simulate "DFSSSP" dfsssp ~num_vls:8 ~flows;
  Format.printf "@.same routes, same fabric - only the lane assignment differs.@."
