(* Operator-style congestion diagnosis: run a workload pattern over a
   fabric under two routings and compare where the traffic concentrates —
   the hottest channels, the load histogram, and the per-flow bandwidth
   shares. This is the view that explains *why* a routing underperforms,
   not just that it does.

   Run with:  dune exec examples/hotspot_analysis.exe -- [topology] [pattern]
   e.g.       dune exec examples/hotspot_analysis.exe -- cluster:deimos:8 tornado *)

open Netgraph

let pattern_of_name name ranks =
  match String.lowercase_ascii name with
  | "all-to-all" -> Ok (Simulator.Patterns.all_to_all ranks)
  | "bisection" ->
    let rng = Rng.create 42 in
    Ok (Simulator.Patterns.random_bisection rng ranks)
  | other -> (
    match List.assoc_opt other Simulator.Patterns.adversarial with
    | Some p -> p ranks
    | None ->
      Error
        (Printf.sprintf "unknown pattern %S (want all-to-all|bisection|%s)" other
           (String.concat "|" (List.map fst Simulator.Patterns.adversarial))))

let () =
  let topo = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cluster:deimos:8" in
  let pattern_name = if Array.length Sys.argv > 2 then Sys.argv.(2) else "tornado" in
  match Harness.Topospec.parse topo with
  | Error msg ->
    Printf.eprintf "topology: %s\n" msg;
    exit 2
  | Ok spec -> (
    let g = spec.Harness.Topospec.graph in
    Format.printf "fabric: %s (%a)@." spec.Harness.Topospec.description Graph.pp_stats g;
    match pattern_of_name pattern_name (Graph.terminals g) with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
    | Ok flows ->
      Format.printf "pattern: %s, %d flows@.@." pattern_name (Array.length flows);
      List.iter
        (fun name ->
          match Harness.Runs.run_named name g with
          | Error msg -> Format.printf "%s: refused (%s)@.@." name msg
          | Ok ft ->
            let r = Simulator.Congestion.evaluate ft ~flows in
            Format.printf "%s: mean share %.4f, worst flow %.4f, hottest channel carries %d flows@."
              name r.Simulator.Congestion.mean_share r.Simulator.Congestion.min_share
              r.Simulator.Congestion.max_congestion;
            Format.printf "  hottest channels:@.";
            List.iter
              (fun (h : Simulator.Congestion.hotspot) ->
                Format.printf "    %-18s -> %-18s  %4d flows@." h.Simulator.Congestion.src_name
                  h.Simulator.Congestion.dst_name h.Simulator.Congestion.load)
              (Simulator.Congestion.hotspots ~top:5 ft ~flows);
            let hist = Simulator.Congestion.load_histogram r in
            let busiest = List.filter (fun (l, _) -> l > 0) hist in
            Format.printf "  load histogram (load x channels): %s@.@."
              (String.concat ", " (List.map (fun (l, n) -> Printf.sprintf "%dx%d" l n) busiest)))
        [ "minhop"; "dfsssp" ])
