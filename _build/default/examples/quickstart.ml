(* Quickstart: build a small irregular fabric, route it deadlock-free with
   DFSSSP, inspect the result, and verify the deadlock-freedom guarantee.

   Run with:  dune exec examples/quickstart.exe *)

open Netgraph

let () =
  (* 1. Describe the fabric. A 4x4 torus of 36-port switches with two
     compute nodes each — a topology plain SSSP cannot route safely. *)
  let fabric, _coords = Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:2 in
  Format.printf "fabric: %a@." Graph.pp_stats fabric;

  (* 2. Route it. [Dfsssp.route] computes globally balanced minimal routes
     and partitions them over virtual lanes so no buffer cycle exists. *)
  match Dfsssp.route ~max_layers:8 fabric with
  | Error e ->
    prerr_endline (Dfsssp.error_to_string e);
    exit 1
  | Ok tables ->
    Format.printf "routing computed by %s, using %d virtual lane(s)@."
      (Routing.Ftable.algorithm tables) (Routing.Ftable.num_layers tables);

    (* 3. Look one route up: first hop and assigned lane for a pair. *)
    let terminals = Graph.terminals fabric in
    let src = terminals.(0) and dst = terminals.(11) in
    (match Routing.Ftable.path tables ~src ~dst with
    | Some path ->
      Format.printf "route %s -> %s: %d hops on virtual lane %d@."
        (Graph.node fabric src).Node.name (Graph.node fabric dst).Node.name (Path.length path)
        (Routing.Ftable.layer tables ~src ~dst)
    | None -> assert false);

    (* 4. Verify end to end: route completeness, minimality, and per-lane
       channel-dependency-graph acyclicity (Dally & Seitz's condition). *)
    (match Dfsssp.Verify.report tables with
    | Ok r -> Format.printf "verification: %a@." Dfsssp.Verify.pp_report r
    | Error e ->
      prerr_endline e;
      exit 1);

    (* 5. Contrast with plain SSSP: same routes, but the single-lane
       dependency graph is cyclic — a deadlock waiting to happen. *)
    (match Routing.Sssp.route fabric with
    | Ok sssp ->
      Format.printf "plain SSSP on the same fabric deadlock-free? %b@."
        (Dfsssp.Verify.deadlock_free sssp)
    | Error _ -> ())
