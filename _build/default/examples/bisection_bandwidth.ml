(* Compare the effective bisection bandwidth of every routing algorithm on
   a real-system stand-in — the per-system slice of the paper's Fig. 4 —
   and show where the deadlock-free algorithms pay (Up*/Down*'s root
   bottleneck, LASH's unbalanced paths) and where DFSSSP does not.

   Run with:  dune exec examples/bisection_bandwidth.exe -- [system] [scale]
   where [system] is one of chic|juropa|odin|ranger|tsubame|deimos
   (default deimos) and [scale] divides the machine size (default 4). *)

open Netgraph

let () =
  let system_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "deimos" in
  let scale = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  match Clusters.by_name ~scale system_name with
  | None ->
    Printf.eprintf "unknown system %S (want chic|juropa|odin|ranger|tsubame|deimos)\n" system_name;
    exit 2
  | Some system ->
    Format.printf "%s: %s@." system.Clusters.name system.Clusters.description;
    Format.printf "fabric: %a@.@." Graph.pp_stats system.Clusters.graph;
    Format.printf "%-14s  %8s  %8s  %6s  %s@." "algorithm" "eBB" "worst" "VLs" "notes";
    List.iter
      (fun (alg : Dfsssp.Registry.algorithm) ->
        match alg.Dfsssp.Registry.run system.Clusters.graph with
        | Error msg -> Format.printf "%-14s  %8s  %8s  %6s  refused: %s@." alg.name "-" "-" "-" msg
        | Ok ft ->
          let rng = Rng.create 2024 in
          let ebb =
            Simulator.Congestion.effective_bisection_bandwidth ~patterns:100 ~rng ft
          in
          let deadlock_free = Dfsssp.Verify.deadlock_free ft in
          Format.printf "%-14s  %8.4f  %8.4f  %6d  %s@." alg.name
            ebb.Simulator.Congestion.samples.Simulator.Metrics.mean
            ebb.Simulator.Congestion.worst_pair (Routing.Ftable.num_layers ft)
            (if deadlock_free then "deadlock-free" else "NOT deadlock-free"))
      (Dfsssp.Registry.all ());
    Format.printf "@.eBB = mean share of wire speed over 100 random bisection pairings (1.0 = no congestion)@."
