examples/hotspot_analysis.mli:
