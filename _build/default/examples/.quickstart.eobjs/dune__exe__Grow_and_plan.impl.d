examples/grow_and_plan.ml: Format Harness List Printf
