examples/bisection_bandwidth.mli:
