examples/ring_deadlock.ml: Array Dfsssp Format Graph Netgraph Routing Simulator Topo_ring
