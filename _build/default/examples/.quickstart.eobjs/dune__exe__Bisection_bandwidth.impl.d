examples/bisection_bandwidth.ml: Array Clusters Dfsssp Format Graph List Netgraph Printf Rng Routing Simulator Sys
