examples/heuristics_tour.mli:
