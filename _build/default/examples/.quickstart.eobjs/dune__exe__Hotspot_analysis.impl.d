examples/hotspot_analysis.ml: Array Format Graph Harness List Netgraph Printf Rng Simulator String Sys
