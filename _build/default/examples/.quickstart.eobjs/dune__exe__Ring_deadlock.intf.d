examples/ring_deadlock.mli:
