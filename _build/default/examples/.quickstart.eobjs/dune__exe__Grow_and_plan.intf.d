examples/grow_and_plan.mli:
