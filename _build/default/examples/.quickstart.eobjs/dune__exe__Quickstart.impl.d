examples/quickstart.ml: Array Dfsssp Format Graph Netgraph Node Path Routing Topo_torus
