examples/custom_topology.ml: Array Dfsssp Format Graph In_channel Netgraph Node Out_channel Path Printf Routing Serial String Sys
