examples/custom_topology.mli:
