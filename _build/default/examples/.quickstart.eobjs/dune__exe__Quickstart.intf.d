examples/quickstart.mli:
