examples/heuristics_tour.ml: Array Deadlock Dfsssp Format List Netgraph Rng Routing Simulator Sys Topo_random
