(* Tour of the cycle-breaking heuristics (paper Section IV): generate a
   batch of random irregular fabrics and compare how many virtual lanes
   each heuristic needs, plus the online-vs-offline assignment variants —
   ending with the APP lower bound on a tiny instance, computed exactly.

   Run with:  dune exec examples/heuristics_tour.exe -- [trials] *)

open Netgraph

let () =
  let trials = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10 in
  Format.printf "random fabrics: 16 switches x 16 ports, 64 nodes, 30 inter-switch cables@.@.";
  Format.printf "%-12s  %4s  %6s  %4s@." "heuristic" "min" "avg" "max";
  List.iter
    (fun h ->
      let samples = ref [] in
      for t = 0 to trials - 1 do
        let rng = Rng.create (7000 + t) in
        let g = Topo_random.make ~switches:16 ~switch_radix:16 ~terminals:64 ~inter_links:30 ~rng in
        match Dfsssp.route ~heuristic:h ~max_layers:32 g with
        | Ok ft -> samples := float_of_int (Routing.Ftable.num_layers ft) :: !samples
        | Error _ -> ()
      done;
      let s = Simulator.Metrics.summarize (Array.of_list !samples) in
      Format.printf "%-12s  %4.0f  %6.2f  %4.0f@." (Deadlock.Heuristic.to_string h)
        s.Simulator.Metrics.min s.Simulator.Metrics.mean s.Simulator.Metrics.max)
    Deadlock.Heuristic.all;

  Format.printf "@.online vs offline assignment (same fabrics, weakest edge):@.";
  Format.printf "%-12s  %4s  %6s  %4s   %s@." "variant" "min" "avg" "max" "avg runtime";
  List.iter
    (fun (label, variant) ->
      let samples = ref [] and time = ref 0.0 in
      for t = 0 to trials - 1 do
        let rng = Rng.create (7000 + t) in
        let g = Topo_random.make ~switches:16 ~switch_radix:16 ~terminals:64 ~inter_links:30 ~rng in
        let t0 = Sys.time () in
        (match Dfsssp.route ~variant ~max_layers:32 g with
        | Ok ft -> samples := float_of_int (Routing.Ftable.num_layers ft) :: !samples
        | Error _ -> ());
        time := !time +. Sys.time () -. t0
      done;
      let s = Simulator.Metrics.summarize (Array.of_list !samples) in
      Format.printf "%-12s  %4.0f  %6.2f  %4.0f   %.1f ms@." label s.Simulator.Metrics.min
        s.Simulator.Metrics.mean s.Simulator.Metrics.max
        (1000.0 *. !time /. float_of_int trials))
    [ ("offline", Dfsssp.Offline); ("online", Dfsssp.Online) ];

  (* The exact view, possible only at toy scale because APP is
     NP-complete (paper Theorem 1): heuristics vs the true optimum. *)
  Format.printf "@.exact APP optimum on the paper's Fig. 3 instance:@.";
  let gen = Deadlock.App.fig3_example in
  (match Deadlock.App.min_cover_exact gen with
  | Some k -> Format.printf "  minimum number of acyclic classes: %d@." k
  | None -> assert false);
  Format.printf "  (computed by exhaustive search - the general problem is NP-complete)@."
