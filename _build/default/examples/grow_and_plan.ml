(* The operator's year, compressed: a clean fat tree accretes a second
   island, service gear and a legacy ring (the paper introduction's
   "machines grow over time"); specialized routings fall over one by one
   while DFSSSP keeps the fabric deadlock-free — and when bandwidth sags,
   the capacity planner prices which single cable would help most.

   Run with:  dune exec examples/grow_and_plan.exe *)

let () =
  Format.printf "=== growth: who survives each extension? ===@.@.";
  Harness.Report.print (Harness.Growth.sweep ~patterns:30 ());
  let final = List.nth (Harness.Growth.stages ()) 3 in
  Format.printf "@.=== capacity planning on the final fabric (%s) ===@.@." final.Harness.Growth.label;
  match Harness.Planner.suggest ~candidates:6 ~patterns:30 ~algorithm:"dfsssp" final.Harness.Growth.graph with
  | Error msg -> Printf.eprintf "planner: %s\n" msg
  | Ok suggestions ->
    Format.printf "%-14s  %-14s  %9s  %9s  %s@." "from" "to" "eBB now" "eBB then" "gain";
    List.iter
      (fun (s : Harness.Planner.suggestion) ->
        Format.printf "%-14s  %-14s  %9.4f  %9.4f  %+.1f%%@." s.Harness.Planner.from_switch
          s.Harness.Planner.to_switch s.Harness.Planner.ebb_before s.Harness.Planner.ebb_after
          (100.0 *. s.Harness.Planner.gain))
      suggestions;
    Format.printf "@.(each row is a full re-route and re-measurement of the upgraded fabric)@."
