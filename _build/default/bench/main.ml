(* Regenerates every table and figure of the paper's evaluation (see
   DESIGN.md for the per-experiment index) at scaled default sizes, then
   runs a bechamel micro-benchmark suite over the routing engines.

   Environment knobs:
     BENCH_SCALE    divisor for real-system sizes      (default 4)
     BENCH_MAX_EP   largest sweep size (Figs. 5-7)     (default 512)
     BENCH_PATTERNS bisection patterns per eBB cell    (default 30)
     BENCH_TRIALS   random-topology seeds (Fig. 9)     (default 5)
     BENCH_SKIP_MICRO  set to skip the bechamel suite
   Full paper scale: BENCH_SCALE=1 BENCH_MAX_EP=4096 BENCH_PATTERNS=1000
   BENCH_TRIALS=100 (CPU-hours). *)

open Netgraph

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v -> ( match int_of_string_opt v with Some i when i > 0 -> i | _ -> default)

let scale = env_int "BENCH_SCALE" 4
let max_endpoints = env_int "BENCH_MAX_EP" 512
let patterns = env_int "BENCH_PATTERNS" 30
let trials = env_int "BENCH_TRIALS" 5

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '#')

let show table =
  Harness.Report.print table;
  (try
     if not (Sys.file_exists "bench_results") then Unix.mkdir "bench_results" 0o755;
     ignore (Harness.Report.save_csv ~dir:"bench_results" table)
   with Unix.Unix_error _ | Sys_error _ -> ());
  print_newline ()

let timed_section title f =
  section title;
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[section took %.1fs]\n" (Unix.gettimeofday () -. t0)

(* Fig. 2: the ring deadlock, demonstrated on the packet simulator. *)
let fig2 () =
  let ring = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let terminals = Graph.terminals ring in
  let flows = Array.init 5 (fun i -> (terminals.(i), terminals.((i + 2) mod 5), 64)) in
  let run name ft vls =
    let config = { Simulator.Flitsim.default_config with num_vls = vls } in
    Format.printf "  %-22s %a@." name Simulator.Flitsim.pp_outcome
      (Simulator.Flitsim.run ~config ft ~flows)
  in
  (match Routing.Sssp.route ring with
  | Ok ft -> run "SSSP (1 VL)" ft 1
  | Error e -> Printf.printf "  sssp failed: %s\n" e);
  match Dfsssp.route ring with
  | Ok ft -> run (Printf.sprintf "DFSSSP (%d VLs)" (Routing.Ftable.num_layers ft)) ft 8
  | Error e -> Printf.printf "  dfsssp failed: %s\n" (Dfsssp.error_to_string e)

let micro () =
  let open Bechamel in
  let g = Topo_tree.make ~k:6 ~n:2 ~endpoints:64 () in
  let bench name f = Test.make ~name (Staged.stage f) in
  let expect label = function
    | Ok x -> x
    | Error _ -> failwith (label ^ ": routing failed")
  in
  let tests =
    Test.make_grouped ~name:"routing(64-endpoint 6-ary 2-tree)"
      [
        bench "minhop" (fun () -> expect "minhop" (Routing.Minhop.route g));
        bench "sssp" (fun () -> expect "sssp" (Routing.Sssp.route g));
        bench "updown" (fun () -> expect "updown" (Routing.Updown.route g));
        bench "ftree" (fun () -> expect "ftree" (Routing.Ftree.route g));
        bench "lash" (fun () -> expect "lash" (Routing.Lash.route g));
        bench "dfsssp-offline" (fun () ->
            match Dfsssp.route g with Ok ft -> ft | Error _ -> failwith "dfsssp");
        bench "dfsssp-online" (fun () ->
            match Dfsssp.route ~variant:Dfsssp.Online g with Ok ft -> ft | Error _ -> failwith "dfsssp");
      ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
    Benchmark.all cfg [ instance ] test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let results = analyze (benchmark tests) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-45s %12.3f us/run\n" name (est /. 1000.0)
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    results

let () =
  Printf.printf "DFSSSP reproduction bench — scale=1/%d, sweeps to %d endpoints, %d patterns, %d trials\n"
    scale max_endpoints patterns trials;
  timed_section "Fig. 2: ring deadlock (packet-level simulation)" fig2;
  timed_section "Table I" (fun () -> show (Harness.Tableone.table ()));
  timed_section "Fig. 4" (fun () -> show (Harness.Fig_bandwidth.fig4 ~scale ~patterns ()));
  timed_section "Fig. 5" (fun () -> show (Harness.Fig_bandwidth.fig5 ~max_endpoints ~patterns ()));
  timed_section "Fig. 6" (fun () -> show (Harness.Fig_bandwidth.fig6 ~max_endpoints ~patterns ()));
  timed_section "Fig. 7" (fun () -> show (Harness.Fig_runtime.fig7 ~max_endpoints ()));
  timed_section "Fig. 8" (fun () -> show (Harness.Fig_runtime.fig8 ~scale ()));
  timed_section "Fig. 9" (fun () -> show (Harness.Fig_vls.fig9 ~trials ()));
  timed_section "Fig. 10" (fun () -> show (Harness.Fig_vls.fig10 ~scale ()));
  timed_section "Heuristics (Section IV)" (fun () -> show (Harness.Fig_vls.heuristics ~trials ()));
  timed_section "Fig. 12" (fun () -> show (Harness.Fig_deimos.fig12 ~scale ~patterns ()));
  timed_section "Fig. 12 (dynamic)" (fun () ->
      show (Harness.Fig_deimos.fig12_dynamic ~scale ()));
  timed_section "Fig. 13" (fun () -> show (Harness.Fig_deimos.fig13 ~scale ()));
  timed_section "Fig. 14 (NAS BT)" (fun () -> show (Harness.Fig_deimos.fig14 ~scale ()));
  timed_section "Fig. 15 (NAS SP)" (fun () -> show (Harness.Fig_deimos.fig15 ~scale ()));
  timed_section "Fig. 16 (NAS FT)" (fun () -> show (Harness.Fig_deimos.fig16 ~scale ()));
  timed_section "Table II" (fun () -> show (Harness.Fig_deimos.table2 ~scale ()));
  timed_section "Ablation: SSSP initial weight (Fig. 1)" (fun () ->
      show (Harness.Ablations.sssp_initial_weight ()));
  timed_section "Ablation: hardened routings" (fun () ->
      show (Harness.Ablations.hardened_routings ~patterns ()));
  timed_section "Extension: dragonfly" (fun () -> show (Harness.Ablations.dragonfly ~patterns ()));
  timed_section "Ablation: layer balancing" (fun () -> show (Harness.Ablations.balancing ()));
  timed_section "Complexity (Props. 1-2)" (fun () ->
      show (Harness.Ablations.complexity ~max_endpoints ()));
  timed_section "Ablation: online cycle-check engines" (fun () ->
      show (Harness.Ablations.online_engines ~max_endpoints ()));
  timed_section "Quality: path length and balance" (fun () ->
      show (Harness.Ablations.routing_quality ()));
  timed_section "Ablation: virtual-lane budget" (fun () -> show (Harness.Ablations.vl_budget ()));
  timed_section "Extension: multipath (LMC)" (fun () -> show (Harness.Ablations.multipath ()));
  timed_section "Extension: phased collectives" (fun () ->
      show (Harness.Ablations.collectives ()));
  timed_section "Extension: adversarial patterns" (fun () ->
      show (Harness.Ablations.adversarial_patterns ()));
  timed_section "Growth: fat tree accretes extensions" (fun () ->
      show (Harness.Growth.sweep ~patterns ()));
  timed_section "Capacity planner (Deimos)" (fun () ->
      let g = (Clusters.deimos ~scale:8 ()).Clusters.graph in
      match Harness.Planner.suggest ~candidates:5 ~patterns ~algorithm:"dfsssp" g with
      | Error e -> Printf.printf "  planner failed: %s\n" e
      | Ok suggestions ->
        List.iter
          (fun (s : Harness.Planner.suggestion) ->
            Printf.printf "  %-14s -- %-14s  eBB %.4f -> %.4f (%+.1f%%)\n" s.Harness.Planner.from_switch
              s.Harness.Planner.to_switch s.Harness.Planner.ebb_before s.Harness.Planner.ebb_after
              (100.0 *. s.Harness.Planner.gain))
          suggestions);
  timed_section "Fault tolerance (torus)" (fun () ->
      show (Harness.Fault_tolerance.sweep ~fabric:Harness.Fault_tolerance.Torus ~patterns ()));
  timed_section "Fault tolerance (fat tree)" (fun () ->
      show (Harness.Fault_tolerance.sweep ~fabric:Harness.Fault_tolerance.Fat_tree ~patterns ()));
  if Sys.getenv_opt "BENCH_SKIP_MICRO" = None then
    timed_section "Bechamel micro-benchmarks" micro;
  print_newline ();
  print_endline "bench: all experiments completed"
