(* Simulation front end: route a fabric, put a workload on it, and run
   either the static congestion model, the cycle-based packet simulator,
   or the discrete-event simulator — the full measurement pipeline from
   the command line. *)

open Cmdliner

let pattern_flows name rng ranks =
  match String.lowercase_ascii name with
  | "all-to-all" -> Ok (Simulator.Patterns.all_to_all ranks)
  | "bisection" -> Ok (Simulator.Patterns.random_bisection rng ranks)
  | "ring-shift" -> Ok (Simulator.Patterns.ring_shift ~by:(Array.length ranks / 2) ranks)
  | other -> (
    match List.assoc_opt other Simulator.Patterns.adversarial with
    | Some p -> p ranks
    | None -> (
      match List.assoc_opt (String.uppercase_ascii other) Simulator.Patterns.nas_kernels with
      | Some p -> p ranks
      | None ->
        Error
          (Printf.sprintf "unknown pattern %S (want all-to-all|bisection|ring-shift|%s|bt|cg|ft|lu|mg|sp)"
             other
             (String.concat "|" (List.map fst Simulator.Patterns.adversarial)))))

let run topology algorithm pattern_name engine bytes seed =
  let rng = Netgraph.Rng.create seed in
  match Harness.Topospec.parse topology with
  | Error msg ->
    Printf.eprintf "topology: %s\n" msg;
    2
  | Ok spec -> (
    let g = spec.Harness.Topospec.graph in
    Format.printf "fabric:  %s@." spec.Harness.Topospec.description;
    match Harness.Runs.run_named ?coords:spec.Harness.Topospec.coords algorithm g with
    | Error msg ->
      Printf.eprintf "routing: %s\n" msg;
      1
    | Ok ft -> (
      Format.printf "routing: %s, %d virtual lane(s), deadlock-free: %b@." algorithm
        (Routing.Ftable.num_layers ft) (Dfsssp.Verify.deadlock_free ft);
      match pattern_flows pattern_name rng (Netgraph.Graph.terminals g) with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        2
      | Ok flows -> (
        Format.printf "pattern: %s, %d flows@." pattern_name (Array.length flows);
        match String.lowercase_ascii engine with
        | "static" ->
          let r = Simulator.Congestion.evaluate ft ~flows in
          Format.printf "static congestion: mean share %.4f, worst flow %.4f, hottest channel %d flows@."
            r.Simulator.Congestion.mean_share r.Simulator.Congestion.min_share
            r.Simulator.Congestion.max_congestion;
          List.iter
            (fun (h : Simulator.Congestion.hotspot) ->
              Format.printf "  hot: %-16s -> %-16s %4d flows@." h.Simulator.Congestion.src_name
                h.Simulator.Congestion.dst_name h.Simulator.Congestion.load)
            (Simulator.Congestion.hotspots ~top:5 ft ~flows);
          0
        | "flit" ->
          let packets = max 1 (bytes / 4096) in
          let fl = Array.map (fun (a, b) -> (a, b, packets)) flows in
          Format.printf "packet simulator (%d packets per flow): %a@." packets Simulator.Flitsim.pp_outcome
            (Simulator.Flitsim.run ft ~flows:fl);
          0
        | "event" -> (
          let fl = Array.map (fun (a, b) -> (a, b, bytes)) flows in
          match Simulator.Netsim.run ft ~flows:fl with
          | Simulator.Netsim.Completed { makespan; flows = st; packets; mean_packet_latency } ->
            let bws = Array.map Simulator.Netsim.bandwidth_of st in
            let mean_bw = Array.fold_left ( +. ) 0.0 bws /. float_of_int (max 1 (Array.length bws)) in
            Format.printf
              "event simulator: %d packets in %.4f ms, mean pair bandwidth %.1f MB/s, mean latency %.1f us@."
              packets (1e3 *. makespan) (mean_bw /. 1e6) (1e6 *. mean_packet_latency);
            0
          | o ->
            Format.printf "event simulator: %a@." Simulator.Netsim.pp_outcome o;
            1)
        | other ->
          Printf.eprintf "unknown engine %S (want static|flit|event)\n" other;
          2)))

let topology = Arg.(value & opt string "cluster:deimos:8" & info [ "t"; "topology" ] ~docv:"SPEC")

let algorithm = Arg.(value & opt string "dfsssp" & info [ "a"; "algorithm" ] ~docv:"NAME")

let pattern =
  Arg.(
    value & opt string "bisection"
    & info [ "p"; "pattern" ] ~docv:"PATTERN"
        ~doc:"Workload: all-to-all, bisection, ring-shift, tornado, bit-complement, bit-reverse, transpose, or a NAS kernel (bt/cg/ft/lu/mg/sp).")

let engine =
  Arg.(
    value & opt string "static"
    & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc:"static (congestion counting), flit (cycle-based), or event (discrete-event).")

let bytes =
  Arg.(value & opt int 262144 & info [ "bytes" ] ~docv:"N" ~doc:"Bytes per flow for the dynamic engines.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED")

let cmd =
  let doc = "simulate a workload over a routed fabric" in
  Cmd.v
    (Cmd.info "simulate" ~version:"1.0.0" ~doc)
    Term.(const run $ topology $ algorithm $ pattern $ engine $ bytes $ seed)

let () = exit (Cmd.eval' cmd)
