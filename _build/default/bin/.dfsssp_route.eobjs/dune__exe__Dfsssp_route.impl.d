bin/dfsssp_route.ml: Arg Cmd Cmdliner Deadlock Dfsssp Format Harness List Logs Manpage Netgraph Option Out_channel Printf Result Routing Simulator String Sys Term Unix
