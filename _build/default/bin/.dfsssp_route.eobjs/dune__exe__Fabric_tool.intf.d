bin/fabric_tool.mli:
