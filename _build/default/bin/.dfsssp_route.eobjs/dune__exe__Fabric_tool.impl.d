bin/fabric_tool.ml: Arg Array Cmd Cmdliner Format Harness Hashtbl List Netgraph Option Out_channel Printf String Term
