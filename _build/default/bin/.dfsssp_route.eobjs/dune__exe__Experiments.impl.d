bin/experiments.ml: Arg Cmd Cmdliner Harness List Printf String Sys Term Unix
