bin/experiments.mli:
