bin/simulate.mli:
