bin/dfsssp_route.mli:
