bin/simulate.ml: Arg Array Cmd Cmdliner Dfsssp Format Harness List Netgraph Printf Routing Simulator String Term
