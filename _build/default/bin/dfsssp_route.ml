(* Command-line routing front end — the moral equivalent of running a
   routing engine inside OpenSM, but against generated or file-described
   fabrics: pick a topology and an algorithm, compute the forwarding
   tables and virtual-lane assignment, verify deadlock-freedom, and
   optionally measure effective bisection bandwidth or export artefacts. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let run verbose topology algorithm max_vls heuristic_name online balance ebb_patterns seed show_routes
    dot_out save_out opensm_out routing_out =
  setup_logs verbose;
  match Harness.Topospec.parse topology with
  | Error msg ->
    Printf.eprintf "topology: %s\n" msg;
    2
  | Ok spec -> (
    let g = spec.Harness.Topospec.graph in
    Format.printf "fabric: %s@." spec.Harness.Topospec.description;
    Format.printf "        %a@." Netgraph.Graph.pp_stats g;
    let heuristic = Deadlock.Heuristic.of_string heuristic_name in
    match heuristic with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      2
    | Ok heuristic -> (
      let result =
        match String.lowercase_ascii algorithm with
        | "dfsssp" ->
          let variant = if online then Dfsssp.Online else Dfsssp.Offline in
          Result.map_error Dfsssp.error_to_string
            (Dfsssp.route ~variant ~heuristic ~max_layers:max_vls ~balance g)
        | name -> (
          match Dfsssp.Registry.find ?coords:spec.Harness.Topospec.coords ~max_layers:max_vls name with
          | None ->
            Error
              (Printf.sprintf "unknown algorithm %S (known: %s)" name
                 (String.concat ", " Dfsssp.Registry.names))
          | Some alg -> alg.Dfsssp.Registry.run g)
      in
      match result with
      | Error msg ->
        Printf.eprintf "routing failed: %s\n" msg;
        1
      | Ok ft ->
        (match Dfsssp.Verify.report ft with
        | Ok r -> Format.printf "result: %a@." Dfsssp.Verify.pp_report r
        | Error msg -> Format.printf "result: INVALID ROUTING (%s)@." msg);
        if ebb_patterns > 0 then begin
          let rng = Netgraph.Rng.create seed in
          let ebb =
            Simulator.Congestion.effective_bisection_bandwidth ~patterns:ebb_patterns ~rng ft
          in
          Format.printf "effective bisection bandwidth: %a (worst pair %.4f)@." Simulator.Metrics.pp_summary
            ebb.Simulator.Congestion.samples ebb.Simulator.Congestion.worst_pair
        end;
        if show_routes then
          Routing.Ftable.iter_pairs ft (fun ~src ~dst path ->
              Format.printf "  %s -> %s vl%d hops=%d@."
                (Netgraph.Graph.node g src).Netgraph.Node.name
                (Netgraph.Graph.node g dst).Netgraph.Node.name
                (Routing.Ftable.layer ft ~src ~dst)
                (Netgraph.Path.length path));
        Option.iter
          (fun path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Netgraph.Serial.to_dot g));
            Format.printf "wrote %s@." path)
          dot_out;
        Option.iter
          (fun path ->
            Netgraph.Serial.save path g;
            Format.printf "wrote %s@." path)
          save_out;
        Option.iter
          (fun dir ->
            if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
            List.iter (Format.printf "wrote %s@.") (Routing.Opensm.save_all ~dir ft))
          opensm_out;
        Option.iter
          (fun path ->
            Routing.Ftable_io.save path ft;
            Format.printf "wrote %s@." path)
          routing_out;
        0))

let topology =
  let doc =
    "Topology specification. Forms: " ^ String.concat "; " Harness.Topospec.grammar_lines ^ "."
  in
  Arg.(value & opt string "torus:4x4:2" & info [ "t"; "topology" ] ~docv:"SPEC" ~doc)

let algorithm =
  let doc = "Routing algorithm: " ^ String.concat ", " Dfsssp.Registry.names ^ "." in
  Arg.(value & opt string "dfsssp" & info [ "a"; "algorithm" ] ~docv:"NAME" ~doc)

let max_vls =
  Arg.(value & opt int 8 & info [ "max-vls" ] ~docv:"N" ~doc:"Virtual lane budget (InfiniBand hardware: 8).")

let heuristic =
  Arg.(
    value & opt string "weakest"
    & info [ "heuristic" ] ~docv:"H" ~doc:"Cycle-breaking heuristic: weakest, heaviest, or first-edge.")

let online =
  Arg.(value & flag & info [ "online" ] ~doc:"Use the online (path-at-a-time) layer assignment for dfsssp.")

let balance =
  Arg.(value & flag & info [ "balance" ] ~doc:"Spread routes over unused virtual lanes after assignment.")

let ebb =
  Arg.(
    value & opt int 0
    & info [ "ebb" ] ~docv:"PATTERNS" ~doc:"Also estimate effective bisection bandwidth over $(docv) random bisections.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for the bandwidth estimate.")

let routes = Arg.(value & flag & info [ "routes" ] ~doc:"Print every route (large on big fabrics).")

let dot_out =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Export the fabric as Graphviz.")

let save_out =
  Arg.(
    value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc:"Save the fabric in the text format.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log the layer assignment's progress.")

let opensm_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "opensm" ] ~docv:"DIR" ~doc:"Write OpenSM-style LFT/GUID/SL2VL dump files into $(docv).")

let routing_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-routing" ]
        ~docv:"FILE"
        ~doc:"Save the complete routing (fabric + tables + lanes) in the Ftable_io text format.")

let cmd =
  let doc = "deadlock-free oblivious routing for arbitrary topologies (DFSSSP)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Computes destination-based forwarding tables plus a virtual-lane assignment whose per-lane \
         channel dependency graphs are acyclic (Domke, Hoefler, Nagel; IPDPS 2011), and verifies the \
         result.";
      `S Manpage.s_examples;
      `Pre "  dfsssp_route -t torus:8x8:2 -a dfsssp --ebb 100\n  dfsssp_route -t cluster:deimos:4 -a lash\n  dfsssp_route -t file:fabric.txt --routes";
    ]
  in
  Cmd.v
    (Cmd.info "dfsssp_route" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ verbose $ topology $ algorithm $ max_vls $ heuristic $ online $ balance $ ebb $ seed
      $ routes $ dot_out $ save_out $ opensm_out $ routing_out)

let () = exit (Cmd.eval' cmd)
