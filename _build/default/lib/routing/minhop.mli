(** MinHop routing, modelled on OpenSM's default algorithm: minimum-hop
    forwarding with port balancing — among the min-hop out-channels toward
    a destination, each node picks the channel with the least accumulated
    route load. Not deadlock-free in general (the paper's reference
    algorithm). *)

(** [route g] computes forwarding entries for every (node, terminal)
    pair. Fails on disconnected fabrics. *)
val route : Graph.t -> (Ftable.t, string) result
