let channel_ref g c =
  (* (neighbour name, occurrence index among parallel cables) *)
  let ch = Graph.channel g c in
  let k = ref 0 in
  Array.iter
    (fun c' ->
      if c' < c && (Graph.channel g c').Channel.dst = ch.Channel.dst then incr k)
    (Graph.out_channels g ch.Channel.src);
  ((Graph.node g ch.Channel.dst).Node.name, !k)

let resolve_channel g ~node ~neighbor ~k =
  let found = ref (-1) in
  let seen = ref 0 in
  Array.iter
    (fun c ->
      let ch = Graph.channel g c in
      if (Graph.node g ch.Channel.dst).Node.name = neighbor then begin
        if !seen = k && !found < 0 then found := c;
        incr seen
      end)
    (Graph.out_channels g node);
  if !found < 0 then None else Some !found

let to_string ft =
  let g = Ftable.graph ft in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "routing %s layers %d\n" (Ftable.algorithm ft) (Ftable.num_layers ft));
  Buffer.add_string buf (Serial.to_string g);
  Buffer.add_string buf "endtopology\n";
  let name v = (Graph.node g v).Node.name in
  Array.iter
    (fun (nd : Node.t) ->
      Array.iter
        (fun dst ->
          match Ftable.next ft ~node:nd.id ~dst with
          | None -> ()
          | Some c ->
            let via, k = channel_ref g c in
            Buffer.add_string buf (Printf.sprintf "entry %s %s %s %d\n" nd.name (name dst) via k))
        (Graph.terminals g))
    (Graph.nodes g);
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then begin
            let vl = Ftable.layer ft ~src ~dst in
            if vl > 0 then Buffer.add_string buf (Printf.sprintf "lane %s %s %d\n" (name src) (name dst) vl)
          end)
        (Graph.terminals g))
    (Graph.terminals g);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let err lineno fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt in
  match lines with
  | [] -> Error "empty input"
  | header :: rest -> (
    let header_words = List.filter (fun w -> w <> "") (String.split_on_char ' ' header) in
    match header_words with
    | [ "routing"; algorithm; "layers"; layers ] -> (
      match int_of_string_opt layers with
      | None -> Error "bad layer count in header"
      | Some num_layers -> (
        let rec split acc lineno = function
          | [] -> Error "missing 'endtopology'"
          | l :: tl when String.trim l = "endtopology" -> Ok (List.rev acc, tl, lineno + 1)
          | l :: tl -> split (l :: acc) (lineno + 1) tl
        in
        match split [] 2 rest with
        | Error msg -> Error msg
        | Ok (topo_lines, entry_lines, entries_start) -> (
          match Serial.of_string (String.concat "\n" topo_lines) with
          | Error msg -> Error msg
          | Ok g ->
            let ft = Ftable.create g ~algorithm in
            Ftable.set_num_layers ft (max 1 num_layers);
            let by_name = Hashtbl.create (Graph.num_nodes g) in
            Array.iter (fun (nd : Node.t) -> Hashtbl.replace by_name nd.name nd.id) (Graph.nodes g);
            let rec go lineno = function
              | [] -> Ok ft
              | raw :: tl -> (
                let line = String.trim raw in
                if line = "" || line.[0] = '#' then go (lineno + 1) tl
                else
                  let words = List.filter (fun w -> w <> "") (String.split_on_char ' ' line) in
                  match words with
                  | [ "entry"; node; dst; via; k ] -> (
                    match
                      (Hashtbl.find_opt by_name node, Hashtbl.find_opt by_name dst, int_of_string_opt k)
                    with
                    | Some node, Some dst, Some k -> (
                      match resolve_channel g ~node ~neighbor:via ~k with
                      | None -> err lineno "no cable %d to %s" k via
                      | Some c ->
                        Ftable.set_next ft ~node ~dst ~channel:c;
                        go (lineno + 1) tl)
                    | None, _, _ | _, None, _ -> err lineno "unknown node in entry"
                    | _, _, None -> err lineno "bad cable index")
                  | [ "lane"; src; dst; vl ] -> (
                    match (Hashtbl.find_opt by_name src, Hashtbl.find_opt by_name dst, int_of_string_opt vl) with
                    | Some src, Some dst, Some vl when vl >= 0 && vl < 256 ->
                      Ftable.set_layer ft ~src ~dst vl;
                      go (lineno + 1) tl
                    | None, _, _ | _, None, _ -> err lineno "unknown node in lane"
                    | _, _, _ -> err lineno "bad lane")
                  | _ -> err lineno "unrecognized directive %S" line)
            in
            go entries_start entry_lines)))
    | _ -> Error "bad header (want: routing <algorithm> layers <n>)")

let save path ft =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string ft))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
