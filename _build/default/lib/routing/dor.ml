(* Forwarding is a pure function of (current switch coordinate, destination
   switch coordinate): find the lowest-index dimension where they differ
   and step toward the destination, wrapping when the torus direction is
   shorter (ties go the positive way). *)

let step dims wrap cur goal d =
  let size = dims.(d) in
  let fwd = (goal - cur + size) mod size in
  let back = (cur - goal + size) mod size in
  if wrap.(d) && size > 2 then if fwd <= back then (cur + 1) mod size else (cur + size - 1) mod size
  else if goal > cur then cur + 1
  else cur - 1

let route g coords =
  let ft = Ftable.create g ~algorithm:"dor" in
  let dims = Coords.dims coords and wrap = Coords.wrap coords in
  let ndims = Array.length dims in
  let result = ref (Ok ()) in
  let fail fmt = Format.kasprintf (fun s -> result := Error s) fmt in
  (* Find the channel from switch [u] to switch [v] (first cable). *)
  let channel_between u v =
    let found = ref (-1) in
    Array.iter
      (fun c -> if !found < 0 && (Graph.channel g c).Channel.dst = v then found := c)
      (Graph.out_channels g u);
    !found
  in
  let switch_of_terminal t = (Graph.channel g (Graph.out_channels g t).(0)).Channel.dst in
  Array.iter
    (fun sw -> if not (Coords.mem coords sw) then fail "dor: switch %d has no coordinate" sw)
    (Graph.switches g);
  (match !result with
  | Error _ -> ()
  | Ok () ->
    Array.iter
      (fun dst ->
        let dst_sw = switch_of_terminal dst in
        let goal = Coords.get coords dst_sw in
        Array.iter
          (fun u ->
            if u <> dst && !result = Ok () then
              if Graph.is_terminal g u then
                Ftable.set_next ft ~node:u ~dst ~channel:(Graph.out_channels g u).(0)
              else if u = dst_sw then begin
                (* Deliver to the attached terminal. *)
                let c = channel_between u dst in
                if c < 0 then fail "dor: lost terminal channel at %d" u
                else Ftable.set_next ft ~node:u ~dst ~channel:c
              end
              else begin
                let cur = Coords.get coords u in
                let rec first_diff d =
                  if d >= ndims then -1 else if cur.(d) <> goal.(d) then d else first_diff (d + 1)
                in
                let d = first_diff 0 in
                if d < 0 then fail "dor: distinct switches share coordinate (%d, %d)" u dst_sw
                else begin
                  let next_coord = Array.copy cur in
                  next_coord.(d) <- step dims wrap cur.(d) goal.(d) d;
                  match Coords.node_at coords next_coord with
                  | exception Not_found -> fail "dor: no switch at neighbour coordinate from %d" u
                  | v ->
                    let c = channel_between u v in
                    if c < 0 then fail "dor: missing grid channel %d -> %d" u v
                    else Ftable.set_next ft ~node:u ~dst ~channel:c
                end
              end)
          (Array.init (Graph.num_nodes g) (fun i -> i)))
      (Graph.terminals g));
  match !result with
  | Error _ as e -> e
  | Ok () -> Ok ft
