lib/routing/minhop.ml: Array Channel Dijkstra Ftable Graph Printf
