lib/routing/dijkstra.ml: Array Channel Graph Heap
