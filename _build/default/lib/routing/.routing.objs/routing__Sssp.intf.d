lib/routing/sssp.mli: Ftable Graph
