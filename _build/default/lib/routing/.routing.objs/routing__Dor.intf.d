lib/routing/dor.mli: Coords Ftable Graph
