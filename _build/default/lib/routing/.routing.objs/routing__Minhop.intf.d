lib/routing/minhop.mli: Ftable Graph
