lib/routing/ftable_io.mli: Ftable
