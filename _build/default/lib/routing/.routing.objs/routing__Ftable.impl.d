lib/routing/ftable.ml: Array Bytes Channel Char Format Graph List Netgraph Path Printf Queue
