lib/routing/ftree.ml: Array Channel Format Ftable Graph List Queue
