lib/routing/lash.ml: Array Channel Dijkstra Ftable Graph List Online Printf
