lib/routing/ftree.mli: Ftable Graph
