lib/routing/ftable.mli: Format Graph Path
