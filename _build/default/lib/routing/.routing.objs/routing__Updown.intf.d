lib/routing/updown.mli: Ftable Graph
