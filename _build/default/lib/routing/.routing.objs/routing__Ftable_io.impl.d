lib/routing/ftable_io.ml: Array Buffer Channel Format Ftable Fun Graph Hashtbl In_channel List Node Printf Serial String
