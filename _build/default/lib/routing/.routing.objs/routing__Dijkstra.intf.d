lib/routing/dijkstra.mli: Graph
