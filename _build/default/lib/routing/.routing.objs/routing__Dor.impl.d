lib/routing/dor.ml: Array Channel Coords Format Ftable Graph
