lib/routing/opensm.ml: Array Buffer Channel Filename Ftable Fun Graph Int64 Node Printf String
