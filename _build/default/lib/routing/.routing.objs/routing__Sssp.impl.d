lib/routing/sssp.ml: Array Channel Dijkstra Ftable Graph Printf
