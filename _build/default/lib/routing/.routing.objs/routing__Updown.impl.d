lib/routing/updown.ml: Array Channel Ftable Graph Printf Queue
