lib/routing/lash.mli: Ftable Graph
