lib/routing/opensm.mli: Ftable Graph
