(* Per destination: BFS hop distances toward dst, then every node picks
   the min-hop channel with the fewest forwarding-table entries so far.
   The load counter is per LFT entry — NOT per end-to-end route — which
   is exactly OpenSM's port balancing and the reason MinHop's balance is
   only local: a table entry on a trunk carries far more traffic than one
   on a leaf link, but both count the same (the gap SSSP closes by
   weighting channels with actual route counts). *)

let route g =
  let n = Graph.num_nodes g in
  let ft = Ftable.create g ~algorithm:"minhop" in
  let ws = Dijkstra.workspace g in
  let load = Array.make (Graph.num_channels g) 0 in
  let result = ref (Ok ()) in
  Array.iter
    (fun dst ->
      match !result with
      | Error _ -> ()
      | Ok () ->
        let dist, _ = Dijkstra.hops_toward ws g ~dst in
        if Array.exists (fun d -> d = max_int) dist then
          result := Error (Printf.sprintf "minhop: node unreachable toward %d" dst)
        else
          for u = 0 to n - 1 do
            if u <> dst then begin
              let best = ref (-1) in
              Array.iter
                (fun c ->
                  let v = (Graph.channel g c).Channel.dst in
                  if dist.(v) + 1 = dist.(u) && (!best < 0 || load.(c) < load.(!best)) then best := c)
                (Graph.out_channels g u);
              match !best with
              | -1 -> result := Error (Printf.sprintf "minhop: no min-hop channel at %d toward %d" u dst)
              | c ->
                Ftable.set_next ft ~node:u ~dst ~channel:c;
                load.(c) <- load.(c) + 1
            end
          done)
    (Graph.terminals g);
  match !result with
  | Error _ as e -> e
  | Ok () -> Ok ft
