(** Persistence for complete routing results — fabric, forwarding tables,
    and virtual-lane assignment in one self-contained text artifact.
    Useful for caching expensive routings, diffing algorithm outputs, and
    feeding external analysis (the role of ORCS input files in the paper's
    toolchain: "a directed graph representation of the network, which also
    includes the routing information").

    Format (line-oriented, [#] comments):
    {v
    routing <algorithm> layers <n>
    <topology section, Netgraph.Serial format, terminated by 'endtopology'>
    entry <node-name> <dst-terminal-name> <via-neighbor-name> <k>
    lane <src-terminal-name> <dst-terminal-name> <vl>
    v}
    A forwarding entry names the neighbour the channel leads to plus the
    occurrence index [k] among parallel cables to that neighbour (0-based,
    in construction order) — a reference that is stable across the
    topology round trip even though {!Netgraph.Serial} canonicalizes link
    order. [lane] lines with lane 0 are omitted. *)

val to_string : Ftable.t -> string

val of_string : string -> (Ftable.t, string) result

val save : string -> Ftable.t -> unit

val load : string -> (Ftable.t, string) result
