let lid_of_node id = id + 1

let guid_prefix = 0x0002c90300000000L

let guid_of_node id = Int64.add guid_prefix (Int64.of_int id)

let port_of_channel g c =
  let src = (Graph.channel g c).Channel.src in
  let out = Graph.out_channels g src in
  let rec find i = if out.(i) = c then i + 1 else find (i + 1) in
  find 0

let lft_dump ft =
  let g = Ftable.graph ft in
  let buf = Buffer.create 4096 in
  let max_lid = lid_of_node (Graph.num_nodes g - 1) in
  Array.iter
    (fun sw ->
      let node = Graph.node g sw in
      Buffer.add_string buf
        (Printf.sprintf "Unicast lids [0x1-0x%X] of switch lid %d guid 0x%016Lx (%s):\n" max_lid
           (lid_of_node sw) (guid_of_node sw) node.Node.name);
      Array.iter
        (fun dst ->
          match Ftable.next ft ~node:sw ~dst with
          | None -> ()
          | Some c ->
            let target = Graph.node g dst in
            Buffer.add_string buf
              (Printf.sprintf "0x%04X %03d : (terminal '%s')\n" (lid_of_node dst) (port_of_channel g c)
                 target.Node.name))
        (Graph.terminals g);
      Buffer.add_char buf '\n')
    (Graph.switches g);
  Buffer.contents buf

let guid_table g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "lid     guid               kind      name\n";
  Array.iter
    (fun (nd : Node.t) ->
      Buffer.add_string buf
        (Printf.sprintf "0x%04X  0x%016Lx  %-8s  %s\n" (lid_of_node nd.id) (guid_of_node nd.id)
           (Node.kind_to_string nd.kind) nd.name))
    (Graph.nodes g);
  Buffer.contents buf

let sl_dump ft =
  let g = Ftable.graph ft in
  if Ftable.num_layers ft > 16 then invalid_arg "Opensm.sl_dump: more than 16 layers";
  let terminals = Graph.terminals g in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# service level (virtual lane) per source x destination terminal\n";
  Array.iter
    (fun src ->
      Buffer.add_string buf (Printf.sprintf "0x%04X " (lid_of_node src));
      Array.iter
        (fun dst ->
          if src = dst then Buffer.add_char buf '.'
          else begin
            let vl = Ftable.layer ft ~src ~dst in
            if vl > 15 then invalid_arg "Opensm.sl_dump: layer above 15";
            Buffer.add_char buf "0123456789abcdef".[vl]
          end)
        terminals;
      Buffer.add_char buf '\n')
    terminals;
  Buffer.contents buf

let save_all ~dir ft =
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents);
    path
  in
  [
    write "opensm-lfts.dump" (lft_dump ft);
    write "opensm-guids.dump" (guid_table (Ftable.graph ft));
    write "opensm-sl2vl.dump" (sl_dump ft);
  ]

type diff = {
  entries_compared : int;
  entries_changed : int;
  lanes_changed : int;
}

let diff_tables a b =
  let g = Ftable.graph a in
  if Ftable.graph b != g then invalid_arg "Opensm.diff_tables: different fabrics";
  let compared = ref 0 and changed = ref 0 and lanes = ref 0 in
  Array.iter
    (fun sw ->
      Array.iter
        (fun dst ->
          incr compared;
          if Ftable.next a ~node:sw ~dst <> Ftable.next b ~node:sw ~dst then incr changed)
        (Graph.terminals g))
    (Graph.switches g);
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst && Ftable.layer a ~src ~dst <> Ftable.layer b ~src ~dst then incr lanes)
        (Graph.terminals g))
    (Graph.terminals g);
  { entries_compared = !compared; entries_changed = !changed; lanes_changed = !lanes }
