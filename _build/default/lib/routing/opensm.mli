(** OpenSM-style dump files. The paper's artifact is a patched OpenSM;
    operators inspect its output as LFT dumps (per-switch unicast
    forwarding tables) and SL-to-VL configuration. This module renders our
    routing results in that spirit so they can be diffed, archived, or fed
    to external tooling.

    Identifiers follow InfiniBand conventions deterministically: the LID
    of a node is [node id + 1] (LID 0 is reserved), the GUID is a fixed
    prefix plus the node id, and a node's port numbers are 1-based
    positions in its outgoing-channel list. *)

val lid_of_node : int -> int

val guid_of_node : int -> int64

(** [port_of_channel g c] is the 1-based port number channel [c] occupies
    at its source node. *)
val port_of_channel : Graph.t -> int -> int

(** [lft_dump ft] renders every switch's unicast forwarding table:
    {v
    Unicast lids [0x1-0xNN] of switch lid 7 guid 0x0002c90000000006 (sw3):
    0x0004 002 : (terminal 't1')
    ...
    v} *)
val lft_dump : Ftable.t -> string

(** [guid_table g] lists every node: lid, guid, kind, name — the fabric
    inventory ("ibnetdiscover" flavour). *)
val guid_table : Graph.t -> string

(** [sl_dump ft] renders the per-route service-level assignment (our
    virtual layer per (src, dst) pair), one line per source terminal with
    one hex digit per destination. Layers above 15 cannot be expressed in
    InfiniBand SLs. @raise Invalid_argument in that case. *)
val sl_dump : Ftable.t -> string

(** Write all three files into a directory as [opensm-lfts.dump],
    [opensm-guids.dump] and [opensm-sl2vl.dump]; returns the paths. *)
val save_all : dir:string -> Ftable.t -> string list

type diff = {
  entries_compared : int;
  entries_changed : int;  (** forwarding entries pointing at a different port *)
  lanes_changed : int;  (** routes assigned a different virtual lane *)
}

(** [diff_tables a b] compares two routings of the {e same} fabric entry
    by entry — what an operator wants to know before pushing new tables
    (every changed entry is a transient routing hole during the update).
    @raise Invalid_argument if the tables belong to different graphs. *)
val diff_tables : Ftable.t -> Ftable.t -> diff
