(* Channel (u -> v) is "up" iff (rank v, v) < (rank u, u) lexicographically,
   where rank is the BFS depth from the chosen root. The strict total order
   makes the up-relation acyclic.

   Forwarding tables must stay legal end-to-end: if a node's entry takes a
   down channel, the next node's entry must also take a down channel.
   Construction per destination (DESIGN.md):
   1. d_down: BFS from dst over reversed down channels (all-down routes).
   2. d_up(u) = min over up channels (u -> v) of 1 + min(d_up v, d_down v),
      computed in increasing (rank, id) order (up strictly decreases it).
   3. Nodes preferring down are closed transitively along their down
      parents (forcing keeps legality; only lengths can grow). *)

let pick_root g =
  let switches = Graph.switches g in
  if Array.length switches = 0 then Error "updown: no switches"
  else begin
    let best = ref (-1) and best_ecc = ref max_int in
    Array.iter
      (fun s ->
        let dist = Graph.bfs_dist g s in
        let ecc = Array.fold_left (fun acc d -> if d = max_int then max_int else max acc d) 0 dist in
        if ecc < !best_ecc then begin
          best_ecc := ecc;
          best := s
        end)
      switches;
    if !best_ecc = max_int then Error "updown: disconnected fabric" else Ok !best
  end

let rank_and_orientation g root =
  let rank = Graph.bfs_dist g root in
  let key v = (rank.(v), v) in
  let up = Array.map (fun (c : Channel.t) -> key c.dst < key c.src) (Graph.channels g) in
  (rank, up)

let orientation g =
  match pick_root g with
  | Error _ as e -> e
  | Ok root ->
    let _, up = rank_and_orientation g root in
    Ok (root, up)

let route g =
  match pick_root g with
  | Error msg -> Error msg
  | Ok root ->
    let n = Graph.num_nodes g in
    let rank, up = rank_and_orientation g root in
    let ft = Ftable.create g ~algorithm:"updown" in
    (* Nodes in increasing (rank, id): up channels point strictly earlier. *)
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare (rank.(a), a) (rank.(b), b)) order;
    let d_down = Array.make n max_int in
    let down_via = Array.make n (-1) in
    let d_up = Array.make n max_int in
    let up_via = Array.make n (-1) in
    let load = Array.make (Graph.num_channels g) 0 in
    let result = ref (Ok ()) in
    let queue = Queue.create () in
    Array.iter
      (fun dst ->
        match !result with
        | Error _ -> ()
        | Ok () ->
          Array.fill d_down 0 n max_int;
          Array.fill down_via 0 n (-1);
          Array.fill d_up 0 n max_int;
          Array.fill up_via 0 n (-1);
          (* 1. All-down distances: BFS from dst across reversed down
             channels. *)
          d_down.(dst) <- 0;
          Queue.clear queue;
          Queue.add dst queue;
          while not (Queue.is_empty queue) do
            let v = Queue.take queue in
            Array.iter
              (fun c ->
                let u = (Graph.channel g c).Channel.src in
                if (not up.(c)) && d_down.(u) = max_int then begin
                  d_down.(u) <- d_down.(v) + 1;
                  down_via.(u) <- c;
                  Queue.add u queue
                end)
              (Graph.in_channels g v)
          done;
          (* 2. Up continuations, bottom-up in the (rank, id) order. *)
          Array.iter
            (fun u ->
              if u <> dst then
                Array.iter
                  (fun c ->
                    if up.(c) then begin
                      let v = (Graph.channel g c).Channel.dst in
                      let dv = min d_up.(v) d_down.(v) in
                      if dv < max_int then begin
                        let cand = dv + 1 in
                        if
                          cand < d_up.(u)
                          || (cand = d_up.(u) && up_via.(u) >= 0 && load.(c) < load.(up_via.(u)))
                        then begin
                          d_up.(u) <- cand;
                          up_via.(u) <- c
                        end
                      end
                    end)
                  (Graph.out_channels g u))
            order;
          (* 3. Mode selection with transitive down-closure. *)
          let down_mode = Array.make n false in
          Array.iter (fun u -> if u <> dst then down_mode.(u) <- d_down.(u) <= d_up.(u)) order;
          (* Force every node on a down-mode node's parent chain into down
             mode as well; chains of already-forced nodes are walked by
             their own outer iteration. *)
          let rec force u =
            if u <> dst && not down_mode.(u) then begin
              down_mode.(u) <- true;
              force (Graph.channel g down_via.(u)).Channel.dst
            end
          in
          Array.iter
            (fun u ->
              if u <> dst && down_mode.(u) && down_via.(u) >= 0 then
                force (Graph.channel g down_via.(u)).Channel.dst)
            order;
          (* 4. Emit entries. *)
          Array.iter
            (fun u ->
              if u <> dst && !result = Ok () then begin
                let c = if down_mode.(u) then down_via.(u) else up_via.(u) in
                if c < 0 then result := Error (Printf.sprintf "updown: node %d cannot reach %d" u dst)
                else begin
                  Ftable.set_next ft ~node:u ~dst ~channel:c;
                  load.(c) <- load.(c) + 1
                end
              end)
            order)
      (Graph.terminals g);
    (match !result with
    | Error _ as e -> e
    | Ok () -> Ok ft)
