type t = {
  mutable nodes : Node.t list; (* reversed *)
  mutable num_nodes : int;
  mutable channels : Channel.t list; (* reversed *)
  mutable num_channels : int;
  mutable reverse : (int * int) list; (* paired channel ids *)
  link_counts : (int * int, int) Hashtbl.t;
  mutable built : bool;
}

let create () =
  { nodes = []; num_nodes = 0; channels = []; num_channels = 0; reverse = []; link_counts = Hashtbl.create 64; built = false }

let check_open t = if t.built then invalid_arg "Builder: already built"

let add_node t kind name =
  check_open t;
  let id = t.num_nodes in
  t.nodes <- { Node.id; kind; name } :: t.nodes;
  t.num_nodes <- id + 1;
  id

let add_switch t ~name = add_node t Node.Switch name

let norm_pair a b = if a < b then (a, b) else (b, a)

let add_link t a b =
  check_open t;
  if a = b then invalid_arg "Builder.add_link: self link";
  if a < 0 || a >= t.num_nodes || b < 0 || b >= t.num_nodes then invalid_arg "Builder.add_link: unknown node";
  let c1 = t.num_channels in
  let c2 = c1 + 1 in
  t.channels <- { Channel.id = c2; src = b; dst = a } :: { Channel.id = c1; src = a; dst = b } :: t.channels;
  t.num_channels <- c2 + 1;
  t.reverse <- (c1, c2) :: t.reverse;
  let key = norm_pair a b in
  Hashtbl.replace t.link_counts key (1 + Option.value ~default:0 (Hashtbl.find_opt t.link_counts key));
  (c1, c2)

let add_terminal t ~name ~switch =
  let id = add_node t Node.Terminal name in
  let (_ : int * int) = add_link t id switch in
  id

let link_count t a b = Option.value ~default:0 (Hashtbl.find_opt t.link_counts (norm_pair a b))

let num_nodes t = t.num_nodes

let build t =
  check_open t;
  t.built <- true;
  let nodes = Array.of_list (List.rev t.nodes) in
  let channels = Array.of_list (List.rev t.channels) in
  let reverse = Array.make (Array.length channels) (-1) in
  List.iter
    (fun (c1, c2) ->
      reverse.(c1) <- c2;
      reverse.(c2) <- c1)
    t.reverse;
  Graph.make ~nodes ~channels ~reverse
