(** Random irregular topologies, as used in the paper's Fig. 9 virtual-lane
    study and the heuristic comparison of Section IV: a fixed population of
    switches with a port budget, terminals spread evenly, and a random —
    but connected — set of inter-switch cables. *)

(** [make ~switches ~switch_radix ~terminals ~inter_links ~rng] builds a
    connected random fabric. Terminals are distributed round-robin over
    switches; the remaining ports form the budget for the [inter_links]
    inter-switch cables. The first [switches - 1] cables form a uniform
    random spanning tree; the rest connect uniformly random switch pairs
    with free ports (parallel cables allowed, as in real fabrics).
    @raise Invalid_argument if parameters are non-positive where required,
    [inter_links < switches - 1] (connectivity impossible), or the port
    budget cannot accommodate terminals plus cables. *)
val make :
  switches:int ->
  switch_radix:int ->
  terminals:int ->
  inter_links:int ->
  rng:Rng.t ->
  Graph.t
