lib/netgraph/topo_xgft.mli: Graph
