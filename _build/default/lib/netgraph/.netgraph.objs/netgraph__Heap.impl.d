lib/netgraph/heap.ml: Array
