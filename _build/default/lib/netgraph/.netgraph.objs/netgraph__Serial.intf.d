lib/netgraph/serial.mli: Graph
