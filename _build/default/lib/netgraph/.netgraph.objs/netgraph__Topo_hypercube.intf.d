lib/netgraph/topo_hypercube.mli: Coords Graph
