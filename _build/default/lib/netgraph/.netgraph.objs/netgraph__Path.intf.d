lib/netgraph/path.mli: Format Graph
