lib/netgraph/channel.ml: Format
