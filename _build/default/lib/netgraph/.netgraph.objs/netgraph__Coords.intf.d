lib/netgraph/coords.mli:
