lib/netgraph/node.ml: Format
