lib/netgraph/topo_hypercube.ml: Array Topo_torus
