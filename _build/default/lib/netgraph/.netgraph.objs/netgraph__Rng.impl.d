lib/netgraph/rng.ml: Array Hashtbl Int64
