lib/netgraph/dsu.mli:
