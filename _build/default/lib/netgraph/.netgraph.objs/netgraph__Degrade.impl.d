lib/netgraph/degrade.ml: Array Builder Channel Graph Hashtbl List Node Queue Rng
