lib/netgraph/topo_kautz.mli: Graph
