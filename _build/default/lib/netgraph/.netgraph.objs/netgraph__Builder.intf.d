lib/netgraph/builder.mli: Graph
