lib/netgraph/builder.ml: Array Channel Graph Hashtbl List Node Option
