lib/netgraph/topo_hyperx.mli: Coords Graph
