lib/netgraph/coords.ml: Array Hashtbl
