lib/netgraph/serial.ml: Array Buffer Builder Channel Format Fun Graph Hashtbl In_channel List Node Option Printf String
