lib/netgraph/degrade.mli: Graph Rng
