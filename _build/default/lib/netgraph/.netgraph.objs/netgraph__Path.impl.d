lib/netgraph/path.ml: Array Channel Format Graph Hashtbl List String
