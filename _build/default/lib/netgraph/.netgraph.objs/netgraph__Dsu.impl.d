lib/netgraph/dsu.ml: Array
