lib/netgraph/topo_torus.mli: Coords Graph
