lib/netgraph/topo_dragonfly.ml: Array Builder Option Printf
