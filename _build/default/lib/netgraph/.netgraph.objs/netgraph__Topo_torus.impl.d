lib/netgraph/topo_torus.ml: Array Builder Coords Printf String
