lib/netgraph/topo_xgft.ml: Array Builder Printf
