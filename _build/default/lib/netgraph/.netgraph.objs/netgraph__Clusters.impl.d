lib/netgraph/clusters.ml: Array Builder Graph List Printf String
