lib/netgraph/topo_random.ml: Array Builder List Printf Rng
