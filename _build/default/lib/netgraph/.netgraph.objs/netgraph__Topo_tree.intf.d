lib/netgraph/topo_tree.mli: Graph
