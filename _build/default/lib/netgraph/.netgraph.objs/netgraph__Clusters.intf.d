lib/netgraph/clusters.mli: Graph
