lib/netgraph/topo_random.mli: Graph Rng
