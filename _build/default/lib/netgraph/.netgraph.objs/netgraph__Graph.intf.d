lib/netgraph/graph.mli: Channel Format Node
