lib/netgraph/topo_tree.ml: Array Builder Option Printf
