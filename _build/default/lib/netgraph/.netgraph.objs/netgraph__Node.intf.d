lib/netgraph/node.mli: Format
