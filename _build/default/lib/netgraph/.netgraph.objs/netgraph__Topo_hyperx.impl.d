lib/netgraph/topo_hyperx.ml: Array Builder Coords Printf String
