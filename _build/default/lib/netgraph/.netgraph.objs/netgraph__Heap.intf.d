lib/netgraph/heap.mli:
