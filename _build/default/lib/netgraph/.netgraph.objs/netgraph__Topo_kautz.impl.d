lib/netgraph/topo_kautz.ml: Array Builder Hashtbl List Printf String
