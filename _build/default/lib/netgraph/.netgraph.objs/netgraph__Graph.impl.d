lib/netgraph/graph.ml: Array Channel Format Node Queue
