lib/netgraph/topo_ring.mli: Graph
