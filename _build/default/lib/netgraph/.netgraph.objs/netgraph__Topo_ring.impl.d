lib/netgraph/topo_ring.ml: Array Builder Printf
