lib/netgraph/parallel.mli:
