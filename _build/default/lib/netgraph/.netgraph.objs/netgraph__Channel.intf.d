lib/netgraph/channel.mli: Format
