lib/netgraph/rng.mli:
