lib/netgraph/parallel.ml: Array Atomic Domain Fun
