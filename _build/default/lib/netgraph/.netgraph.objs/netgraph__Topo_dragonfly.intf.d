lib/netgraph/topo_dragonfly.mli: Graph
