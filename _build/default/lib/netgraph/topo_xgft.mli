(** Extended generalized fat trees XGFT(h; m_1..m_h; w_1..w_h)
    (Öhring et al.), the topology of the paper's Fig. 5 sweep.

    Levels run 0..h; level-0 nodes are leaf switches. A level-i node has
    [m_i] children at level i-1 and [w_(i+1)] parents at level i+1. The
    number of level-i nodes is [(m_(i+1)*...*m_h) * (w_1*...*w_i)];
    in particular there are [m_1*...*m_h] leaf switches and
    [w_1*...*w_h] roots. *)

(** [make ~ms ~ws ~endpoints] builds XGFT(h; ms; ws) with [h = Array.length
    ms] and distributes [endpoints] terminals round-robin over the leaf
    switches (the paper attaches nominal endpoint counts, e.g. 1024, to
    leaf-switch arrays whose size does not divide them).
    @raise Invalid_argument if [ms]/[ws] lengths differ, any entry < 1,
    [h = 0], or [endpoints < 0]. *)
val make : ms:int array -> ws:int array -> endpoints:int -> Graph.t

(** Leaf-switch count [m_1*...*m_h]. *)
val num_leaves : ms:int array -> int

(** Total switch count across all levels. *)
val num_switches : ms:int array -> ws:int array -> int
