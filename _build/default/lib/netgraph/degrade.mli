(** Fault injection: derive degraded fabrics by removing cables or
    switches. The paper's introduction motivates DFSSSP exactly here —
    real machines lose links, grow sideways, and stop being the clean
    fat tree or torus their specialized routing assumed; a general
    deadlock-free routing must keep working on the remainder. *)

(** [remove_cables g ~rng ~count] removes [count] random switch-to-switch
    cables (both directed channels) while keeping the fabric connected:
    cables whose removal would disconnect it are skipped (like an operator
    draining redundant links only). Returns the degraded fabric and the
    number of cables actually removed — possibly fewer than requested when
    no further cable is redundant. Terminal attachment cables are never
    touched. Node ids are preserved; channel ids are re-assigned. *)
val remove_cables : Graph.t -> rng:Rng.t -> count:int -> Graph.t * int

(** [remove_switch g ~switch] removes one switch, its cables, and the
    terminals attached to it. Fails if the remainder is disconnected or
    [switch] is not a switch id. Node and channel ids are re-assigned;
    nodes keep their names. *)
val remove_switch : Graph.t -> switch:int -> (Graph.t, string) result
