let make ~dim ~terminals_per_switch =
  if dim < 1 then invalid_arg "Topo_hypercube.make: dim < 1";
  Topo_torus.mesh ~dims:(Array.make dim 2) ~terminals_per_switch
