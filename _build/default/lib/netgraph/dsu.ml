type t = { parent : int array; rank : int array; mutable count : int }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    t.count <- t.count - 1;
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end;
    true
  end

let same t a b = find t a = find t b

let count t = t.count
