(** Routes through the fabric, represented as the sequence of channel ids a
    message traverses (the paper's path [p = c_0 c_1 ... c_n] in the
    channel-dependency world). *)

type t = int array

(** [source g p] is the node the path starts at.
    @raise Invalid_argument on an empty path. *)
val source : Graph.t -> t -> int

(** [target g p] is the node the path ends at.
    @raise Invalid_argument on an empty path. *)
val target : Graph.t -> t -> int

(** Number of channels (hops). *)
val length : t -> int

(** [node_sequence g p] is the node ids visited, length [length p + 1]. *)
val node_sequence : Graph.t -> t -> int array

(** [is_consistent g p] checks the channels chain head-to-tail. *)
val is_consistent : Graph.t -> t -> bool

(** [is_simple g p] additionally checks that no node repeats. *)
val is_simple : Graph.t -> t -> bool

(** [dependencies p] is the list of consecutive channel pairs
    [(c_i, c_{i+1})] — the CDG edges the path induces. *)
val dependencies : t -> (int * int) list

val pp : Format.formatter -> t -> unit
