(** Kautz-graph networks (paper Fig. 6): switches form the Kautz graph
    K(b, n) — words of length [n] over an alphabet of [b+1] symbols with
    no two consecutive symbols equal, arcs (s_1..s_n) -> (s_2..s_n, x) —
    and terminals are distributed over the switches.

    The Kautz graph is directed; cables are full duplex, so we lay one
    bidirectional cable per unordered switch pair that carries at least
    one arc (mutual arcs share one cable). *)

(** [make ~b ~n ~endpoints] builds K(b, n) with [(b+1) * b^(n-1)] switches
    and [endpoints] terminals distributed round-robin.
    @raise Invalid_argument if [b < 2], [n < 1], or [endpoints < 0]. *)
val make : b:int -> n:int -> endpoints:int -> Graph.t

(** [(b+1) * b^(n-1)]. *)
val num_switches : b:int -> n:int -> int
