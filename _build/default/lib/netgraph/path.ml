type t = int array

let source g p =
  if Array.length p = 0 then invalid_arg "Path.source: empty path";
  (Graph.channel g p.(0)).Channel.src

let target g p =
  if Array.length p = 0 then invalid_arg "Path.target: empty path";
  (Graph.channel g p.(Array.length p - 1)).Channel.dst

let length = Array.length

let node_sequence g p =
  let n = Array.length p in
  if n = 0 then [||]
  else
    Array.init (n + 1) (fun i ->
        if i = 0 then (Graph.channel g p.(0)).Channel.src else (Graph.channel g p.(i - 1)).Channel.dst)

let is_consistent g p =
  let n = Array.length p in
  let rec go i =
    if i >= n - 1 then true
    else
      (Graph.channel g p.(i)).Channel.dst = (Graph.channel g p.(i + 1)).Channel.src && go (i + 1)
  in
  go 0

let is_simple g p =
  is_consistent g p
  &&
  let seq = node_sequence g p in
  let seen = Hashtbl.create (Array.length seq) in
  Array.for_all
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    seq

let dependencies p =
  let n = Array.length p in
  let rec go i acc = if i >= n - 1 then List.rev acc else go (i + 1) ((p.(i), p.(i + 1)) :: acc) in
  go 0 []

let pp ppf p =
  Format.fprintf ppf "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int p)))
