(** Indexed binary min-heap over integer elements [0 .. capacity-1] with
    integer priorities and decrease-key, as required by Dijkstra's
    algorithm over dense node-id spaces. *)

type t

(** [create capacity] makes an empty heap able to hold elements
    [0 .. capacity-1]. *)
val create : int -> t

(** Number of elements currently in the heap. *)
val size : t -> int

val is_empty : t -> bool

(** [mem t x] is [true] iff [x] is currently in the heap. *)
val mem : t -> int -> bool

(** [priority t x] is the current priority of [x].
    @raise Not_found if [x] is not in the heap. *)
val priority : t -> int -> int

(** [insert t x p] adds [x] with priority [p].
    @raise Invalid_argument if [x] is already present or out of range. *)
val insert : t -> int -> int -> unit

(** [decrease t x p] lowers the priority of [x] to [p].
    @raise Invalid_argument if [x] is absent or [p] is larger than the
    current priority. *)
val decrease : t -> int -> int -> unit

(** [insert_or_decrease t x p] inserts [x], or decreases its key if present
    and [p] improves on it; a no-op if [p] is not an improvement. *)
val insert_or_decrease : t -> int -> int -> unit

(** [pop_min t] removes and returns the element with the smallest priority
    (ties broken arbitrarily but deterministically). *)
val pop_min : t -> (int * int) option

(** Remove all elements. O(size). *)
val clear : t -> unit
