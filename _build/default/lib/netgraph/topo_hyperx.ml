let num_cables ~dims =
  let total = Array.fold_left ( * ) 1 dims in
  Array.fold_left (fun acc k -> acc + (total / k * (k * (k - 1) / 2))) 0 dims

let make ~dims ~terminals_per_switch =
  let ndims = Array.length dims in
  if ndims = 0 then invalid_arg "Topo_hyperx.make: empty dims";
  Array.iter (fun d -> if d < 2 then invalid_arg "Topo_hyperx.make: dimension size < 2") dims;
  if terminals_per_switch < 0 then invalid_arg "Topo_hyperx.make: negative terminals";
  let total = Array.fold_left ( * ) 1 dims in
  let coords = Coords.make ~dims ~wrap:(Array.make ndims false) in
  let b = Builder.create () in
  let coord_of_index idx =
    let c = Array.make ndims 0 in
    let rest = ref idx in
    for d = ndims - 1 downto 0 do
      c.(d) <- !rest mod dims.(d);
      rest := !rest / dims.(d)
    done;
    c
  in
  let index_of_coord c =
    let idx = ref 0 in
    for d = 0 to ndims - 1 do
      idx := (!idx * dims.(d)) + c.(d)
    done;
    !idx
  in
  let name c = String.concat "_" (Array.to_list (Array.map string_of_int c)) in
  let sw = Array.make total (-1) in
  for i = 0 to total - 1 do
    let c = coord_of_index i in
    sw.(i) <- Builder.add_switch b ~name:("x" ^ name c);
    Coords.set coords ~node:sw.(i) ~coord:c
  done;
  (* full connectivity within every dimension row: cables to strictly
     greater coordinates only, so each appears once *)
  for i = 0 to total - 1 do
    let c = coord_of_index i in
    for d = 0 to ndims - 1 do
      for x = c.(d) + 1 to dims.(d) - 1 do
        let c' = Array.copy c in
        c'.(d) <- x;
        let (_ : int * int) = Builder.add_link b sw.(i) sw.(index_of_coord c') in
        ()
      done
    done;
    for t = 0 to terminals_per_switch - 1 do
      let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "t%s_%d" (name c) t) ~switch:sw.(i) in
      ()
    done
  done;
  (Builder.build b, coords)
