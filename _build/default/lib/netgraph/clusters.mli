(** Reconstructions of the six real-world InfiniBand systems evaluated in
    the paper (Figs. 4, 8, 10, 12–16). Exact cable lists of the original
    machines are not public; these stand-ins rebuild the same *classes* of
    fabric at the same scale from the published descriptions — fat-tree
    islands, monolithic Clos "director" switches (which are internally
    2-level Clos networks of 24-port chips), service nodes with redundant
    links, and inter-island trunks. See DESIGN.md §2 for the substitution
    rationale.

    Large systems accept [?scale] (default 1 = full size): node and trunk
    counts are divided by [scale] so the default benches finish quickly;
    pass [~scale:1] to reproduce at full published size. *)

type system = {
  name : string;
  graph : Graph.t;
  description : string;
}

(** Odin (Indiana University): 128 nodes on a single 144-port director
    switch (internally 12 leaf chips x 6 spine chips). A pure fat tree —
    the paper's case where DFSSSP has no advantage. *)
val odin : ?scale:int -> unit -> system

(** Deimos (TU Dresden): 724 nodes over three 288-port director switches
    connected in a chain by 2 x 15 trunk cables (paper Fig. 11). *)
val deimos : ?scale:int -> unit -> system

(** CHiC (Chemnitz): 550 nodes; 2-level fat tree of 24-port leaf chips with
    a handful of doubly-attached service nodes making it irregular. *)
val chic : ?scale:int -> unit -> system

(** JUROPA / HPC-FF (Jülich): 3288 nodes; 2-level striped fat tree
    (leaves connect to a sliding window of the spines — oversubscribed and
    irregular). *)
val juropa : ?scale:int -> unit -> system

(** Ranger (TACC): 3936 nodes; chassis switches each split their uplinks
    between two Magnum director switches (no direct trunk between the
    directors). *)
val ranger : ?scale:int -> unit -> system

(** Tsubame (Tokyo Tech): 1430 nodes; director-switch edge islands joined
    through two core directors. *)
val tsubame : ?scale:int -> unit -> system

(** All six systems, in the paper's Fig. 4 order, at the given scale. *)
val all : ?scale:int -> unit -> system list

(** [by_name ?scale name] looks a system up case-insensitively. *)
val by_name : ?scale:int -> string -> system option
