let coord_name coord =
  String.concat "_" (Array.to_list (Array.map string_of_int coord))

let make ~dims ~wrap ~terminals_per_switch =
  let ndims = Array.length dims in
  if ndims = 0 then invalid_arg "Topo_torus.make: empty dims";
  if Array.length wrap <> ndims then invalid_arg "Topo_torus.make: dims/wrap mismatch";
  Array.iter (fun d -> if d < 1 then invalid_arg "Topo_torus.make: dimension size < 1") dims;
  if terminals_per_switch < 0 then invalid_arg "Topo_torus.make: negative terminals";
  let total = Array.fold_left ( * ) 1 dims in
  let coords = Coords.make ~dims ~wrap in
  let b = Builder.create () in
  (* Mixed-radix enumeration: linear index -> coordinate. *)
  let coord_of_index idx =
    let c = Array.make ndims 0 in
    let rest = ref idx in
    for d = ndims - 1 downto 0 do
      c.(d) <- !rest mod dims.(d);
      rest := !rest / dims.(d)
    done;
    c
  in
  let index_of_coord c =
    let idx = ref 0 in
    for d = 0 to ndims - 1 do
      idx := (!idx * dims.(d)) + c.(d)
    done;
    !idx
  in
  let sw = Array.make total (-1) in
  for i = 0 to total - 1 do
    let c = coord_of_index i in
    sw.(i) <- Builder.add_switch b ~name:("s" ^ coord_name c);
    Coords.set coords ~node:sw.(i) ~coord:c
  done;
  for i = 0 to total - 1 do
    let c = coord_of_index i in
    for d = 0 to ndims - 1 do
      (* Positive-direction neighbour only, to add each cable once. *)
      if c.(d) + 1 < dims.(d) then begin
        let c' = Array.copy c in
        c'.(d) <- c.(d) + 1;
        let (_ : int * int) = Builder.add_link b sw.(i) sw.(index_of_coord c') in
        ()
      end
      else if wrap.(d) && dims.(d) > 2 then begin
        let c' = Array.copy c in
        c'.(d) <- 0;
        let (_ : int * int) = Builder.add_link b sw.(i) sw.(index_of_coord c') in
        ()
      end
    done;
    for j = 0 to terminals_per_switch - 1 do
      let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "t%s_%d" (coord_name c) j) ~switch:sw.(i) in
      ()
    done
  done;
  (Builder.build b, coords)

let torus ~dims ~terminals_per_switch =
  make ~dims ~wrap:(Array.make (Array.length dims) true) ~terminals_per_switch

let mesh ~dims ~terminals_per_switch =
  make ~dims ~wrap:(Array.make (Array.length dims) false) ~terminals_per_switch
