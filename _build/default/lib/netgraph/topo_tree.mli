(** k-ary n-trees (Petrini/Vanneschi fat trees), the topology of the
    paper's Fig. 7 runtime sweep. *)

(** [make ~k ~n ?endpoints ()] builds a k-ary n-tree: [n] switch levels of
    [k^(n-1)] switches each; level [n-1] switches are leaves. By default
    every leaf switch carries [k] terminals (the canonical [k^n]
    processing nodes); [endpoints] overrides the total terminal count,
    distributed round-robin over leaf switches (the paper sizes networks
    by nominal endpoint counts).
    @raise Invalid_argument if [k < 2], [n < 1], or [endpoints < 0]. *)
val make : k:int -> n:int -> ?endpoints:int -> unit -> Graph.t

(** Number of switches a [make ~k ~n] fabric contains: [n * k^(n-1)]. *)
val num_switches : k:int -> n:int -> int
