type kind =
  | Switch
  | Terminal

type t = { id : int; kind : kind; name : string }

let is_switch n = n.kind = Switch

let is_terminal n = n.kind = Terminal

let kind_to_string = function
  | Switch -> "switch"
  | Terminal -> "terminal"

let pp ppf n = Format.fprintf ppf "%s#%d(%s)" n.name n.id (kind_to_string n.kind)
