(* Rebuild a graph from a subset of its cables. [keep_cable] receives the
   lower channel id of each bidirectional pair. *)
let rebuild g ~keep_node ~keep_cable =
  let b = Builder.create () in
  let remap = Array.make (Graph.num_nodes g) (-1) in
  Array.iter
    (fun (nd : Node.t) ->
      if keep_node nd.id && Node.is_switch nd then remap.(nd.id) <- Builder.add_switch b ~name:nd.name)
    (Graph.nodes g);
  Array.iter
    (fun (nd : Node.t) ->
      if keep_node nd.id && Node.is_terminal nd then begin
        let attach = (Graph.channel g (Graph.out_channels g nd.id).(0)).Channel.dst in
        if remap.(attach) >= 0 then remap.(nd.id) <- Builder.add_terminal b ~name:nd.name ~switch:remap.(attach)
      end)
    (Graph.nodes g);
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.id with
      | Some r when r < c.id -> ()
      | _ ->
        let a = Graph.node g c.src and d = Graph.node g c.dst in
        if
          Node.is_switch a && Node.is_switch d && remap.(c.src) >= 0 && remap.(c.dst) >= 0
          && keep_cable c.id
        then begin
          let (_ : int * int) = Builder.add_link b remap.(c.src) remap.(c.dst) in
          ()
        end)
    (Graph.channels g);
  Builder.build b

let switch_cables g =
  let out = ref [] in
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.id with
      | Some r when r < c.id -> ()
      | _ -> if Graph.is_switch g c.src && Graph.is_switch g c.dst then out := c.id :: !out)
    (Graph.channels g);
  Array.of_list (List.rev !out)

let remove_cables g ~rng ~count =
  let removed = Hashtbl.create 16 in
  let connected_without extra =
    (* BFS over switches only, skipping removed cables and [extra]. *)
    let skip c =
      Hashtbl.mem removed c
      || (match Graph.reverse_channel g c with Some r -> Hashtbl.mem removed (min c r) | None -> false)
      || c = extra
      || (match Graph.reverse_channel g c with Some r -> min c r = extra | None -> false)
    in
    let switches = Graph.switches g in
    if Array.length switches = 0 then true
    else begin
      let seen = Hashtbl.create 64 in
      let queue = Queue.create () in
      Hashtbl.replace seen switches.(0) ();
      Queue.add switches.(0) queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        Array.iter
          (fun c ->
            let v = (Graph.channel g c).Channel.dst in
            if Graph.is_switch g v && (not (skip c)) && not (Hashtbl.mem seen v) then begin
              Hashtbl.replace seen v ();
              Queue.add v queue
            end)
          (Graph.out_channels g u)
      done;
      Hashtbl.length seen = Array.length switches
    end
  in
  let candidates = switch_cables g in
  Rng.shuffle rng candidates;
  let taken = ref 0 in
  Array.iter
    (fun cable ->
      if !taken < count && connected_without cable then begin
        Hashtbl.replace removed cable ();
        incr taken
      end)
    candidates;
  let g' = rebuild g ~keep_node:(fun _ -> true) ~keep_cable:(fun c -> not (Hashtbl.mem removed c)) in
  (g', !taken)

let remove_switch g ~switch =
  if switch < 0 || switch >= Graph.num_nodes g || not (Graph.is_switch g switch) then
    Error "Degrade.remove_switch: not a switch"
  else begin
    let keep_node v =
      v <> switch
      &&
      if Graph.is_terminal g v then (Graph.channel g (Graph.out_channels g v).(0)).Channel.dst <> switch
      else true
    in
    let g' = rebuild g ~keep_node ~keep_cable:(fun _ -> true) in
    if Graph.num_nodes g' > 0 && Graph.connected g' then Ok g'
    else Error "Degrade.remove_switch: remainder disconnected"
  end
