(** Network nodes: switches (forwarding elements) and terminals
    (compute endpoints, the InfiniBand HCAs of the paper). *)

type kind =
  | Switch
  | Terminal

type t = {
  id : int;  (** dense id, index into the graph's node array *)
  kind : kind;
  name : string;  (** human-readable label, e.g. ["sw3"] or ["n17"] *)
}

val is_switch : t -> bool
val is_terminal : t -> bool
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
