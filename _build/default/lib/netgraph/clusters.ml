type system = {
  name : string;
  graph : Graph.t;
  description : string;
}

let scaled scale n = max 1 (n / scale)

(* A director ("big") switch is internally a 2-level Clos of 24-port chips:
   leaf chips expose 12 external ports and 12 uplinks spread over the spine
   chips. Returns the leaf-chip ids and a [next_port] function cycling over
   them, which callers use to attach terminals or trunk cables. *)
let director b ~name ~external_ports =
  if external_ports < 12 then invalid_arg "Clusters.director: too small";
  let leaf_chips = (external_ports + 11) / 12 in
  let spine_chips = max 1 (leaf_chips / 2) in
  let cables_per_pair = max 1 (12 / spine_chips) in
  let leaves = Array.init leaf_chips (fun i -> Builder.add_switch b ~name:(Printf.sprintf "%s_leaf%d" name i)) in
  let spines = Array.init spine_chips (fun i -> Builder.add_switch b ~name:(Printf.sprintf "%s_spine%d" name i)) in
  Array.iter
    (fun leaf ->
      Array.iter
        (fun spine ->
          for _ = 1 to cables_per_pair do
            let (_ : int * int) = Builder.add_link b leaf spine in
            ()
          done)
        spines)
    leaves;
  (* Terminals spread round-robin from the first leaf chip; trunk cables
     pack onto consecutive ports from the last chip backwards (patch
     panels put trunks on adjacent line boards), concentrating trunk
     traffic on few chips as on the real directors. *)
  let cursor = ref 0 in
  let next_port () =
    let leaf = leaves.(!cursor mod leaf_chips) in
    incr cursor;
    leaf
  in
  let trunk_cursor = ref 0 in
  let next_trunk_port () =
    let leaf = leaves.(leaf_chips - 1 - (!trunk_cursor / 12 mod leaf_chips)) in
    incr trunk_cursor;
    leaf
  in
  (leaves, next_port, next_trunk_port)

let attach_terminals b next_port ~prefix ~count =
  for i = 0 to count - 1 do
    let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "%s%d" prefix i) ~switch:(next_port ()) in
    ()
  done

let trunk b next_port_a next_port_b ~cables =
  for _ = 1 to cables do
    let (_ : int * int) = Builder.add_link b (next_port_a ()) (next_port_b ()) in
    ()
  done

let odin ?(scale = 1) () =
  let nodes = scaled scale 128 in
  let b = Builder.create () in
  let _, port, _ = director b ~name:"odin" ~external_ports:144 in
  attach_terminals b port ~prefix:"n" ~count:nodes;
  {
    name = "Odin";
    graph = Builder.build b;
    description =
      Printf.sprintf "%d nodes, one 144-port director (pure 2-level Clos)" nodes;
  }

let deimos ?(scale = 1) () =
  let nodes = scaled scale 724 in
  let trunk_cables = max 1 (15 / scale) in
  let b = Builder.create () in
  let _, pa, ta = director b ~name:"d1" ~external_ports:288 in
  let _, pb, tb = director b ~name:"d2" ~external_ports:288 in
  let _, pc, tc = director b ~name:"d3" ~external_ports:288 in
  (* Chain d1 - d2 - d3, 15 cables per hop (paper Fig. 11: 30 links total). *)
  trunk b ta tb ~cables:trunk_cables;
  trunk b tb tc ~cables:trunk_cables;
  let third = nodes / 3 in
  attach_terminals b pa ~prefix:"a" ~count:(nodes - (2 * third));
  attach_terminals b pb ~prefix:"b" ~count:third;
  attach_terminals b pc ~prefix:"c" ~count:third;
  {
    name = "Deimos";
    graph = Builder.build b;
    description =
      Printf.sprintf "%d nodes, three 288-port directors chained by 2x%d trunks" nodes trunk_cables;
  }

let chic ?(scale = 1) () =
  let nodes = scaled scale 542 and service = if scale = 1 then 8 else 2 in
  let b = Builder.create () in
  let leaf_count = (nodes + 11) / 12 in
  let spine_count = 12 in
  let leaves = Array.init leaf_count (fun i -> Builder.add_switch b ~name:(Printf.sprintf "leaf%d" i)) in
  let spines = Array.init spine_count (fun i -> Builder.add_switch b ~name:(Printf.sprintf "spine%d" i)) in
  Array.iter
    (fun leaf ->
      Array.iter
        (fun spine ->
          let (_ : int * int) = Builder.add_link b leaf spine in
          ())
        spines)
    leaves;
  for i = 0 to nodes - 1 do
    let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "n%d" i) ~switch:leaves.(i mod leaf_count) in
    ()
  done;
  (* Service nodes hang off dedicated switches that are double-homed into
     the spine level with redundant cables — the irregularity the paper
     points out in real installations. *)
  let svc_sw = Builder.add_switch b ~name:"svc0" and svc_sw2 = Builder.add_switch b ~name:"svc1" in
  for j = 0 to 3 do
    let (_ : int * int) = Builder.add_link b svc_sw spines.(j) in
    let (_ : int * int) = Builder.add_link b svc_sw2 spines.(spine_count - 1 - j) in
    ()
  done;
  let (_ : int * int) = Builder.add_link b svc_sw svc_sw2 in
  for i = 0 to service - 1 do
    let sw = if i mod 2 = 0 then svc_sw else svc_sw2 in
    let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "svc%d" i) ~switch:sw in
    ()
  done;
  {
    name = "CHiC";
    graph = Builder.build b;
    description =
      Printf.sprintf "%d compute + %d service nodes, 2-level fat tree with double-homed service switches" nodes
        service;
  }

let juropa ?(scale = 1) () =
  let nodes = scaled scale 3288 in
  let b = Builder.create () in
  let per_leaf = 24 in
  let leaf_count = (nodes + per_leaf - 1) / per_leaf in
  let spine_count = max 4 (min 18 (leaf_count / 4)) in
  let leaves = Array.init leaf_count (fun i -> Builder.add_switch b ~name:(Printf.sprintf "leaf%d" i)) in
  let spines = Array.init spine_count (fun i -> Builder.add_switch b ~name:(Printf.sprintf "spine%d" i)) in
  (* Striped (sliding-window) uplinks: leaf i connects to 12 of the spines
     starting at spine (i mod spine_count) — a 2:1-oversubscribed fat tree
     that is not a clean XGFT, matching JUROPA's QNEM wiring style. *)
  let uplinks = min 12 spine_count in
  Array.iteri
    (fun i leaf ->
      for j = 0 to uplinks - 1 do
        let (_ : int * int) = Builder.add_link b leaf spines.((i + j) mod spine_count) in
        ()
      done)
    leaves;
  for i = 0 to nodes - 1 do
    let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "n%d" i) ~switch:leaves.(i mod leaf_count) in
    ()
  done;
  {
    name = "JUROPA";
    graph = Builder.build b;
    description = Printf.sprintf "%d nodes, striped 2-level fat tree (%d leaves, %d spines)" nodes leaf_count spine_count;
  }

let ranger ?(scale = 1) () =
  let nodes = scaled scale 3936 in
  let b = Builder.create () in
  let per_chassis = 12 in
  let chassis_count = (nodes + per_chassis - 1) / per_chassis in
  let magnum_ports = max 24 (chassis_count * 4) in
  let _, pa, _ = director b ~name:"magnum1" ~external_ports:magnum_ports in
  let _, pb, _ = director b ~name:"magnum2" ~external_ports:magnum_ports in
  (* Each chassis switch splits its uplinks between the two Magnums; the
     Magnums have no direct trunk (Ranger's NEM wiring). *)
  for c = 0 to chassis_count - 1 do
    let ch = Builder.add_switch b ~name:(Printf.sprintf "chassis%d" c) in
    for _ = 1 to 4 do
      let (_ : int * int) = Builder.add_link b ch (pa ()) in
      let (_ : int * int) = Builder.add_link b ch (pb ()) in
      ()
    done;
    let first = c * per_chassis in
    let last = min nodes (first + per_chassis) - 1 in
    for i = first to last do
      let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "n%d" i) ~switch:ch in
      ()
    done
  done;
  {
    name = "Ranger";
    graph = Builder.build b;
    description =
      Printf.sprintf "%d nodes, %d chassis double-homed to two Magnum directors" nodes chassis_count;
  }

let tsubame ?(scale = 1) () =
  let nodes = scaled scale 1430 in
  let islands = 6 in
  let trunk_cables = max 1 (12 / scale) in
  let b = Builder.create () in
  let edge =
    Array.init islands (fun i ->
        let _, port, tport = director b ~name:(Printf.sprintf "edge%d" i) ~external_ports:288 in
        (port, tport))
  in
  let _, _, core1 = director b ~name:"core1" ~external_ports:288 in
  let _, _, core2 = director b ~name:"core2" ~external_ports:288 in
  Array.iter
    (fun (_, tport) ->
      trunk b tport core1 ~cables:trunk_cables;
      trunk b tport core2 ~cables:trunk_cables)
    edge;
  let per_island = nodes / islands in
  let rest = nodes - (per_island * islands) in
  Array.iteri
    (fun i (port, _) ->
      let count = per_island + if i < rest then 1 else 0 in
      attach_terminals b port ~prefix:(Printf.sprintf "i%dn" i) ~count)
    edge;
  {
    name = "Tsubame";
    graph = Builder.build b;
    description =
      Printf.sprintf "%d nodes, %d director islands trunked through 2 core directors" nodes islands;
  }

let all ?(scale = 1) () =
  [ chic ~scale (); juropa ~scale (); odin ~scale (); ranger ~scale (); tsubame ~scale (); deimos ~scale () ]

let by_name ?(scale = 1) name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii s.name = target) (all ~scale ())
