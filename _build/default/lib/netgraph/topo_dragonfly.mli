(** Dragonfly topologies (Kim, Dally, Scott, Abts) — an extension beyond
    the paper's evaluation set: minimal routes take a local-global-local
    shape whose channel dependencies are cyclic across groups, so a
    general deadlock-free routing is genuinely exercised.

    dragonfly(a, p, h): groups of [a] fully-connected switches, [p]
    terminals and [h] global cables per switch; with the canonical
    [a*h + 1] groups every group pair shares exactly one global cable. *)

(** [make ~a ~p ~h ?groups ()] builds the fabric. [groups] defaults to
    [a*h + 1] and must satisfy [2 <= groups <= a*h + 1].
    @raise Invalid_argument on parameter violations. *)
val make : a:int -> p:int -> h:int -> ?groups:int -> unit -> Graph.t

(** Switch count: [groups * a]. *)
val num_switches : a:int -> h:int -> ?groups:int -> unit -> int
