(** Disjoint-set union (union-find) with path compression and union by
    rank. Used by the random-topology generator to guarantee connectivity. *)

type t

val create : int -> t

(** Representative of the set containing [x]. *)
val find : t -> int -> int

(** [union t a b] merges the sets of [a] and [b]; returns [true] iff they
    were previously distinct. *)
val union : t -> int -> int -> bool

(** [same t a b] is [true] iff [a] and [b] are in the same set. *)
val same : t -> int -> int -> bool

(** Number of disjoint sets remaining. *)
val count : t -> int
