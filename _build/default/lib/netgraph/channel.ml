type t = { id : int; src : int; dst : int }

let pp ppf c = Format.fprintf ppf "c%d:%d->%d" c.id c.src c.dst
