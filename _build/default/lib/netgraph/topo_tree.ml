let rec pow base e = if e = 0 then 1 else base * pow base (e - 1)

let num_switches ~k ~n = n * pow k (n - 1)

(* Switch <w, l>: l in 0..n-1 (0 = top), w in {0..k-1}^(n-1) encoded as a
   mixed-radix integer with w_0 most significant. <w, l> and <w', l+1> are
   adjacent iff w and w' agree on every digit except position l. *)
let make ~k ~n ?endpoints () =
  if k < 2 then invalid_arg "Topo_tree.make: k < 2";
  if n < 1 then invalid_arg "Topo_tree.make: n < 1";
  let endpoints = Option.value ~default:(pow k n) endpoints in
  if endpoints < 0 then invalid_arg "Topo_tree.make: endpoints < 0";
  let per_level = pow k (n - 1) in
  let b = Builder.create () in
  let sw = Array.make (n * per_level) (-1) in
  let id level w = (level * per_level) + w in
  for level = 0 to n - 1 do
    for w = 0 to per_level - 1 do
      sw.(id level w) <- Builder.add_switch b ~name:(Printf.sprintf "s%d_%d" level w)
    done
  done;
  (* Digit l of w (w_0 most significant among n-1 digits). *)
  let digit_weight l = pow k (n - 2 - l) in
  for level = 0 to n - 2 do
    for w = 0 to per_level - 1 do
      let weight = digit_weight level in
      let d = w / weight mod k in
      let base = w - (d * weight) in
      for x = 0 to k - 1 do
        let w' = base + (x * weight) in
        let (_ : int * int) = Builder.add_link b sw.(id level w) sw.(id (level + 1) w') in
        ()
      done
    done
  done;
  for i = 0 to endpoints - 1 do
    let leaf = i mod per_level in
    let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "t%d" i) ~switch:sw.(id (n - 1) leaf) in
    ()
  done;
  Builder.build b
