(** Binary hypercube topologies: a [dim]-cube is a torus with [dim]
    dimensions of size 2. *)

(** [make ~dim ~terminals_per_switch] builds a [2^dim]-switch hypercube.
    @raise Invalid_argument if [dim < 1]. *)
val make : dim:int -> terminals_per_switch:int -> Graph.t * Coords.t
