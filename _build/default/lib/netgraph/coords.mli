(** Cartesian coordinate metadata for grid-like topologies (meshes, tori,
    hypercubes). Dimension-order routing needs to know each switch's
    position; generators that produce grids return this alongside the
    graph. *)

type t

(** [make ~dims ~wrap] creates an empty coordinate table for a grid with
    the given per-dimension sizes; [wrap.(d)] says whether dimension [d]
    has wrap-around links (torus) or not (mesh). *)
val make : dims:int array -> wrap:bool array -> t

val dims : t -> int array
val wrap : t -> bool array
val num_dims : t -> int

(** [set t ~node ~coord] records the position of a switch. The coordinate
    array is copied. *)
val set : t -> node:int -> coord:int array -> unit

(** [get t node] is the coordinate of [node].
    @raise Not_found if the node has no recorded position. *)
val get : t -> int -> int array

val mem : t -> int -> bool

(** [node_at t coord] inverts [get].
    @raise Not_found if no switch sits at [coord]. *)
val node_at : t -> int array -> int
