let rec pow base e = if e = 0 then 1 else base * pow base (e - 1)

let num_switches ~b ~n = (b + 1) * pow b (n - 1)

(* Vertices are encoded as integers: the word s_1..s_n maps to an index by
   s_1 in [0, b+1) then each subsequent digit as an offset in [0, b)
   relative to the previous symbol (skipping equality), giving a dense
   encoding of exactly (b+1)*b^(n-1) words. *)
let make ~b ~n ~endpoints =
  if b < 2 then invalid_arg "Topo_kautz.make: b < 2";
  if n < 1 then invalid_arg "Topo_kautz.make: n < 1";
  if endpoints < 0 then invalid_arg "Topo_kautz.make: endpoints < 0";
  let count = num_switches ~b ~n in
  (* Enumerate all words explicitly; map word -> vertex index. *)
  let words = Array.make count [||] in
  let index = Hashtbl.create (2 * count) in
  let cursor = ref 0 in
  let rec enumerate prefix len =
    if len = n then begin
      let w = Array.of_list (List.rev prefix) in
      words.(!cursor) <- w;
      Hashtbl.replace index w !cursor;
      incr cursor
    end
    else
      for s = 0 to b do
        match prefix with
        | last :: _ when last = s -> ()
        | _ -> enumerate (s :: prefix) (len + 1)
      done
  in
  enumerate [] 0;
  assert (!cursor = count);
  let bld = Builder.create () in
  let sw =
    Array.init count (fun i ->
        let name =
          "k" ^ String.concat "" (Array.to_list (Array.map string_of_int words.(i)))
        in
        Builder.add_switch bld ~name)
  in
  (* Arc u -> v iff word(v) = shift(word(u)) + fresh last symbol. *)
  let successors u =
    let w = words.(u) in
    let succ = ref [] in
    for x = 0 to b do
      if x <> w.(n - 1) then begin
        let w' = Array.init n (fun i -> if i < n - 1 then w.(i + 1) else x) in
        succ := Hashtbl.find index w' :: !succ
      end
    done;
    !succ
  in
  let arc = Hashtbl.create (4 * count * b) in
  for u = 0 to count - 1 do
    List.iter (fun v -> Hashtbl.replace arc (u, v) ()) (successors u)
  done;
  for u = 0 to count - 1 do
    List.iter
      (fun v ->
        if u <> v then
          (* One cable per unordered pair: add on the (u < v) orientation,
             or on the arc's own orientation when the reverse arc is absent. *)
          let mutual = Hashtbl.mem arc (v, u) in
          if (mutual && u < v) || not mutual then begin
            let (_ : int * int) = Builder.add_link bld sw.(u) sw.(v) in
            ()
          end)
      (successors u)
  done;
  for t = 0 to endpoints - 1 do
    let (_ : int) = Builder.add_terminal bld ~name:(Printf.sprintf "t%d" t) ~switch:sw.(t mod count) in
    ()
  done;
  Builder.build bld
