(** Mutable builder for {!Graph.t}. Topology generators add switches,
    terminals and (bidirectional) links and then freeze the result. *)

type t

val create : unit -> t

(** [add_switch t ~name] returns the new switch's node id. *)
val add_switch : t -> name:string -> int

(** [add_terminal t ~name ~switch] creates a terminal attached to [switch]
    with a bidirectional link, and returns its node id. *)
val add_terminal : t -> name:string -> switch:int -> int

(** [add_link t a b] adds a bidirectional cable (two paired directed
    channels) between nodes [a] and [b]; returns the two channel ids
    [(a_to_b, b_to_a)]. Parallel cables are allowed.
    @raise Invalid_argument on self links or unknown node ids. *)
val add_link : t -> int -> int -> int * int

(** [link_count t a b] is the number of cables currently between [a] and
    [b] (in either direction orientation — cables are symmetric). *)
val link_count : t -> int -> int -> int

val num_nodes : t -> int

(** Freeze into an immutable graph. The builder may not be reused after. *)
val build : t -> Graph.t
