let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let init ?(domains = 1) n f =
  if n <= 0 then [||]
  else if domains <= 1 || n < 2 then Array.init n f
  else begin
    (* seed the result array with one sequentially-computed element *)
    let first = f 0 in
    let out = Array.make n first in
    let workers = min domains n in
    let chunk = (n + workers - 1) / workers in
    let failure = Atomic.make None in
    let work w () =
      let lo = max 1 (w * chunk) in
      let hi = min n ((w + 1) * chunk) in
      try
        for i = lo to hi - 1 do
          out.(i) <- f i
        done
      with e -> (
        (* keep the first failure; result array contents are discarded *)
        match Atomic.get failure with
        | None -> Atomic.set failure (Some e)
        | Some _ -> ())
    in
    let handles = Array.init workers (fun w -> Domain.spawn (work w)) in
    Array.iter Domain.join handles;
    (match Atomic.get failure with
    | Some e -> raise e
    | None -> ());
    out
  end

let map_array ?domains f a = init ?domains (Array.length a) (fun i -> f a.(i))

let for_all ?domains f a =
  let results = map_array ?domains f a in
  Array.for_all Fun.id results
