(** Ring topologies (the paper's Fig. 2 deadlock example). *)

(** [make ~switches ~terminals_per_switch] builds a unidirectionally-indexed
    ring of [switches] switches (each cable bidirectional), with
    [terminals_per_switch] terminals on each switch.
    @raise Invalid_argument if [switches < 3] or
    [terminals_per_switch < 0]. *)
val make : switches:int -> terminals_per_switch:int -> Graph.t
