let prod a lo hi =
  let p = ref 1 in
  for i = lo to hi do
    p := !p * a.(i)
  done;
  !p

let num_leaves ~ms = prod ms 0 (Array.length ms - 1)

let level_count ~ms ~ws i =
  let h = Array.length ms in
  (* A_i = m_(i+1)*...*m_h  (indices shifted: ms.(j) is m_(j+1)) *)
  prod ms i (h - 1) * prod ws 0 (i - 1)

let num_switches ~ms ~ws =
  let h = Array.length ms in
  let total = ref 0 in
  for i = 0 to h do
    total := !total + level_count ~ms ~ws i
  done;
  !total

(* Level-i nodes are addressed by (a, b): a in [0, A_i) identifies the
   subtree chain (digit a_(i+1) least significant, radix m_(i+1)), b in
   [0, B_i) the replica index (digit b_1 least significant, radix w_1).
   The level-(i+1) parents of (a, b) are (a / m_(i+1), b + B_i * c) for
   c in [0, w_(i+1)); see DESIGN.md for the derivation. *)
let make ~ms ~ws ~endpoints =
  let h = Array.length ms in
  if h = 0 then invalid_arg "Topo_xgft.make: height 0";
  if Array.length ws <> h then invalid_arg "Topo_xgft.make: ms/ws length mismatch";
  Array.iter (fun m -> if m < 1 then invalid_arg "Topo_xgft.make: m < 1") ms;
  Array.iter (fun w -> if w < 1 then invalid_arg "Topo_xgft.make: w < 1") ws;
  if endpoints < 0 then invalid_arg "Topo_xgft.make: endpoints < 0";
  let b = Builder.create () in
  let levels =
    Array.init (h + 1) (fun i ->
        let count = level_count ~ms ~ws i in
        Array.init count (fun j -> Builder.add_switch b ~name:(Printf.sprintf "s%d_%d" i j)))
  in
  for i = 0 to h - 1 do
    let count_i = level_count ~ms ~ws i in
    let b_i = prod ws 0 (i - 1) in
    for node = 0 to count_i - 1 do
      let a = node / b_i and bb = node mod b_i in
      for c = 0 to ws.(i) - 1 do
        let parent_a = a / ms.(i) in
        let parent_b = bb + (b_i * c) in
        let parent = (parent_a * (b_i * ws.(i))) + parent_b in
        let (_ : int * int) = Builder.add_link b levels.(i).(node) levels.(i + 1).(parent) in
        ()
      done
    done
  done;
  let leaves = level_count ~ms ~ws 0 in
  for t = 0 to endpoints - 1 do
    let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "t%d" t) ~switch:levels.(0).(t mod leaves) in
    ()
  done;
  Builder.build b
