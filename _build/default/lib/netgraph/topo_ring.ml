let make ~switches ~terminals_per_switch =
  if switches < 3 then invalid_arg "Topo_ring.make: need at least 3 switches";
  if terminals_per_switch < 0 then invalid_arg "Topo_ring.make: negative terminals";
  let b = Builder.create () in
  let sw = Array.init switches (fun i -> Builder.add_switch b ~name:(Printf.sprintf "s%d" i)) in
  for i = 0 to switches - 1 do
    let (_ : int * int) = Builder.add_link b sw.(i) sw.((i + 1) mod switches) in
    for j = 0 to terminals_per_switch - 1 do
      let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "t%d_%d" i j) ~switch:sw.(i) in
      ()
    done
  done;
  Builder.build b
