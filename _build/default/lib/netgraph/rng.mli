(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic parts of the library (random topologies, random bisection
    patterns, heuristic tie-breaking) draw from an explicit [Rng.t] so that
    every experiment is reproducible from a seed, independently of the
    global [Stdlib.Random] state. *)

type t

(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new generator from [t], advancing [t]. Streams of
    the parent and child are statistically independent. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t a] is a uniformly random element of [a].
    @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a

(** [sample_distinct t ~n ~bound] draws [n] distinct values from
    [\[0, bound)]. @raise Invalid_argument if [n > bound] or [n < 0]. *)
val sample_distinct : t -> n:int -> bound:int -> int array
