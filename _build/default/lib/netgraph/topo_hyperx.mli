(** HyperX / flattened-butterfly topologies (Ahn et al.): switches sit on
    a D-dimensional lattice and each "row" of every dimension is fully
    connected — a hypercube generalisation with radix-k dimensions and
    diameter D. Another arbitrary-topology stress case: minimal routes
    (one hop per offending dimension) create rich channel dependencies
    that no dimension-ordered scheme covers once links fail. *)

(** [make ~dims ~terminals_per_switch] builds the lattice with full
    per-dimension connectivity; returns the fabric and switch coordinates
    (dimension order routing applies, wrap-free: every in-row hop is
    direct). @raise Invalid_argument on empty dims or sizes < 2. *)
val make : dims:int array -> terminals_per_switch:int -> Graph.t * Coords.t

(** Number of cables: [S/k * C(k,2)] summed per dimension. *)
val num_cables : dims:int array -> int
