type t = {
  dims : int array;
  wrap : bool array;
  forward : (int, int array) Hashtbl.t;
  backward : (int array, int) Hashtbl.t;
}

let make ~dims ~wrap =
  if Array.length dims <> Array.length wrap then invalid_arg "Coords.make: dims/wrap mismatch";
  { dims = Array.copy dims; wrap = Array.copy wrap; forward = Hashtbl.create 64; backward = Hashtbl.create 64 }

let dims t = Array.copy t.dims

let wrap t = Array.copy t.wrap

let num_dims t = Array.length t.dims

let set t ~node ~coord =
  if Array.length coord <> Array.length t.dims then invalid_arg "Coords.set: wrong arity";
  Array.iteri
    (fun d x -> if x < 0 || x >= t.dims.(d) then invalid_arg "Coords.set: out of range")
    coord;
  let coord = Array.copy coord in
  Hashtbl.replace t.forward node coord;
  Hashtbl.replace t.backward coord node

let get t node = match Hashtbl.find_opt t.forward node with Some c -> Array.copy c | None -> raise Not_found

let mem t node = Hashtbl.mem t.forward node

let node_at t coord =
  match Hashtbl.find_opt t.backward coord with Some n -> n | None -> raise Not_found
