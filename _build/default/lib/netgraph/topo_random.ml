let make ~switches ~switch_radix ~terminals ~inter_links ~rng =
  if switches < 2 then invalid_arg "Topo_random.make: switches < 2";
  if switch_radix < 1 then invalid_arg "Topo_random.make: switch_radix < 1";
  if terminals < 0 then invalid_arg "Topo_random.make: terminals < 0";
  if inter_links < switches - 1 then invalid_arg "Topo_random.make: too few links for connectivity";
  let ports_used = Array.make switches 0 in
  for t = 0 to terminals - 1 do
    let s = t mod switches in
    ports_used.(s) <- ports_used.(s) + 1
  done;
  let total_free = ref 0 in
  Array.iter
    (fun used ->
      if used > switch_radix then invalid_arg "Topo_random.make: terminals exceed radix";
      total_free := !total_free + (switch_radix - used))
    ports_used;
  if !total_free < 2 * inter_links then invalid_arg "Topo_random.make: port budget too small for links";
  let b = Builder.create () in
  let sw = Array.init switches (fun i -> Builder.add_switch b ~name:(Printf.sprintf "s%d" i)) in
  for t = 0 to terminals - 1 do
    let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "t%d" t) ~switch:sw.(t mod switches) in
    ()
  done;
  let free s = switch_radix - ports_used.(s) in
  let connect a bidx =
    let (_ : int * int) = Builder.add_link b sw.(a) sw.(bidx) in
    ports_used.(a) <- ports_used.(a) + 1;
    ports_used.(bidx) <- ports_used.(bidx) + 1
  in
  (* Random spanning tree: random permutation; attach each switch to a
     random already-placed switch with a free port. *)
  let order = Array.init switches (fun i -> i) in
  Rng.shuffle rng order;
  for i = 1 to switches - 1 do
    let candidates = ref [] in
    for j = 0 to i - 1 do
      if free order.(j) > 0 then candidates := order.(j) :: !candidates
    done;
    (match !candidates with
    | [] -> invalid_arg "Topo_random.make: port budget exhausted during spanning tree"
    | l ->
      let arr = Array.of_list l in
      connect order.(i) (Rng.pick rng arr))
  done;
  (* Extra links between uniformly random distinct switches with free
     ports. *)
  let remaining = inter_links - (switches - 1) in
  for _ = 1 to remaining do
    let with_free = Array.of_list (List.filter (fun s -> free s > 0) (Array.to_list sw)) in
    if Array.length with_free < 2 then invalid_arg "Topo_random.make: port budget exhausted";
    let a = Rng.pick rng with_free in
    let rec pick_other () =
      let c = Rng.pick rng with_free in
      if c = a then pick_other () else c
    in
    connect a (pick_other ())
  done;
  Builder.build b
