let default_groups ~a ~h = (a * h) + 1

let num_switches ~a ~h ?groups () =
  let groups = Option.value ~default:(default_groups ~a ~h) groups in
  groups * a

(* Global cable k (0 <= k < a*h) of group i leads to group (i+k+1) mod g,
   leaving from switch (k / h) of group i; laying each cable from the
   lower-numbered group only avoids duplicates, with the remote attachment
   switch derived from the reverse relative index. *)
let make ~a ~p ~h ?groups () =
  if a < 1 then invalid_arg "Topo_dragonfly.make: a < 1";
  if p < 0 then invalid_arg "Topo_dragonfly.make: p < 0";
  if h < 1 then invalid_arg "Topo_dragonfly.make: h < 1";
  let g = Option.value ~default:(default_groups ~a ~h) groups in
  if g < 2 then invalid_arg "Topo_dragonfly.make: fewer than 2 groups";
  if g > default_groups ~a ~h then invalid_arg "Topo_dragonfly.make: too many groups for a*h global ports";
  let b = Builder.create () in
  let sw =
    Array.init g (fun grp -> Array.init a (fun s -> Builder.add_switch b ~name:(Printf.sprintf "g%ds%d" grp s)))
  in
  (* local all-to-all within each group *)
  Array.iter
    (fun group ->
      for i = 0 to a - 1 do
        for j = i + 1 to a - 1 do
          let (_ : int * int) = Builder.add_link b group.(i) group.(j) in
          ()
        done
      done)
    sw;
  (* global cables *)
  for grp = 0 to g - 1 do
    for k = 0 to (a * h) - 1 do
      let target = (grp + k + 1) mod g in
      if target <> grp && grp < target then begin
        let remote_k = (grp - target - 1 + (2 * g)) mod g in
        (* remote_k is the relative index the target group uses for us;
           only valid as a cable when within its global-port range *)
        if remote_k < a * h then begin
          let (_ : int * int) = Builder.add_link b sw.(grp).(k / h) sw.(target).(remote_k / h) in
          ()
        end
      end
    done
  done;
  (* terminals *)
  Array.iteri
    (fun grp group ->
      Array.iteri
        (fun s switch ->
          for t = 0 to p - 1 do
            let (_ : int) =
              Builder.add_terminal b ~name:(Printf.sprintf "t%d_%d_%d" grp s t) ~switch
            in
            ()
          done)
        group)
    sw;
  Builder.build b
