(** Directed communication channels. A physical cable between two nodes is
    modelled, as in the paper, by two directed channels (one per
    direction); parallel cables yield parallel channels (the network is a
    directed multigraph). *)

type t = {
  id : int;  (** dense id, index into the graph's channel array *)
  src : int;  (** source node id *)
  dst : int;  (** destination node id *)
}

val pp : Format.formatter -> t -> unit
