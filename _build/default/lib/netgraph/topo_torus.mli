(** k-ary n-cube (torus) and mesh topologies with coordinate metadata for
    dimension-order routing. *)

(** [make ~dims ~wrap ~terminals_per_switch] builds a grid of switches with
    per-dimension sizes [dims]; dimension [d] gets wrap-around cables iff
    [wrap.(d)] (a size-2 dimension never wraps: the wrap cable would
    duplicate the existing one). Returns the fabric and the switch
    coordinates.
    @raise Invalid_argument on empty dims, sizes < 1, or arity mismatch. *)
val make : dims:int array -> wrap:bool array -> terminals_per_switch:int -> Graph.t * Coords.t

(** [torus ~dims ~terminals_per_switch] wraps every dimension. *)
val torus : dims:int array -> terminals_per_switch:int -> Graph.t * Coords.t

(** [mesh ~dims ~terminals_per_switch] wraps no dimension. *)
val mesh : dims:int array -> terminals_per_switch:int -> Graph.t * Coords.t
