let to_string g =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun (nd : Node.t) ->
      if Node.is_switch nd then Buffer.add_string buf (Printf.sprintf "switch %s\n" nd.name))
    (Graph.nodes g);
  Array.iter
    (fun (nd : Node.t) ->
      if Node.is_terminal nd then begin
        let c = Graph.channel g (Graph.out_channels g nd.id).(0) in
        let sw = Graph.node g c.Channel.dst in
        Buffer.add_string buf (Printf.sprintf "terminal %s %s\n" nd.name sw.Node.name)
      end)
    (Graph.nodes g);
  (* Each cable appears as two paired channels; emit once, counting
     multiplicity between switch pairs. *)
  let counts = Hashtbl.create 256 in
  Array.iter
    (fun (c : Channel.t) ->
      let a = Graph.node g c.src and b = Graph.node g c.dst in
      if Node.is_switch a && Node.is_switch b then
        match Graph.reverse_channel g c.id with
        | Some r when r < c.id -> () (* counted on the partner *)
        | _ ->
          let key = (a.Node.name, b.Node.name) in
          Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    (Graph.channels g);
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] in
  List.iter
    (fun ((a, b), n) -> Buffer.add_string buf (Printf.sprintf "link %s %s %d\n" a b n))
    (List.sort compare entries);
  Buffer.contents buf

let of_string text =
  let builder = Builder.create () in
  let names = Hashtbl.create 256 in
  let err line fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "line %d: %s" line s)) fmt in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok (Builder.build builder)
    | raw :: rest -> (
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then go (lineno + 1) rest
      else
        let words = List.filter (fun w -> w <> "") (String.split_on_char ' ' line) in
        match words with
        | [ "switch"; name ] ->
          if Hashtbl.mem names name then err lineno "duplicate node name %s" name
          else begin
            Hashtbl.replace names name (Builder.add_switch builder ~name);
            go (lineno + 1) rest
          end
        | [ "terminal"; name; sw ] -> (
          if Hashtbl.mem names name then err lineno "duplicate node name %s" name
          else
            match Hashtbl.find_opt names sw with
            | None -> err lineno "unknown switch %s" sw
            | Some swid ->
              Hashtbl.replace names name (Builder.add_terminal builder ~name ~switch:swid);
              go (lineno + 1) rest)
        | "link" :: a :: b :: mult -> (
          let mult =
            match mult with
            | [] -> Ok 1
            | [ m ] -> (
              match int_of_string_opt m with
              | Some v when v >= 1 -> Ok v
              | _ -> Error ())
            | _ -> Error ()
          in
          match (mult, Hashtbl.find_opt names a, Hashtbl.find_opt names b) with
          | Error (), _, _ -> err lineno "bad multiplicity"
          | _, None, _ -> err lineno "unknown node %s" a
          | _, _, None -> err lineno "unknown node %s" b
          | Ok m, Some ida, Some idb ->
            if ida = idb then err lineno "self link on %s" a
            else begin
              for _ = 1 to m do
                let (_ : int * int) = Builder.add_link builder ida idb in
                ()
              done;
              go (lineno + 1) rest
            end)
        | _ -> err lineno "unrecognized directive %S" line)
  in
  go 1 lines

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let to_dot g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "graph fabric {\n  overlap=false;\n";
  Array.iter
    (fun (nd : Node.t) ->
      let shape = if Node.is_switch nd then "box" else "point" in
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\" shape=%s];\n" nd.id nd.name shape))
    (Graph.nodes g);
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.id with
      | Some r when r < c.id -> ()
      | _ -> Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" c.src c.dst))
    (Graph.channels g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
