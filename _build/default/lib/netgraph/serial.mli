(** Plain-text topology interchange format and Graphviz export.

    The format is line-oriented (comments start with [#]):
    {v
    switch <name>
    terminal <name> <switch-name>
    link <name-a> <name-b> [multiplicity]
    v}
    Node names may not contain whitespace. [link] lines lay bidirectional
    cables between two switches (or a switch and an already-declared
    terminal's switch is not allowed — terminals get their cable from the
    [terminal] line). *)

(** Render a graph in the text format. Round-trips with {!of_string} up to
    node ids (names and the multiset of cables are preserved). *)
val to_string : Graph.t -> string

(** Parse the text format.
    Returns [Error message] (with a line number) on malformed input. *)
val of_string : string -> (Graph.t, string) result

val save : string -> Graph.t -> unit

val load : string -> (Graph.t, string) result

(** Graphviz (dot) rendering: switches as boxes, terminals as points,
    one undirected edge per cable. *)
val to_dot : Graph.t -> string
