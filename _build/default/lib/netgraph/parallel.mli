(** Fork-join helpers over OCaml 5 domains for the embarrassingly parallel
    parts of the pipeline — effective-bisection-bandwidth sampling
    (independent random matchings) and per-layer verification (independent
    channel dependency graphs). Work functions must be pure with respect
    to shared state: they may read the immutable fabric and routing
    tables, and must not touch shared mutable structures. *)

(** [Domain.recommended_domain_count], capped at 8 — the fan-out sweet
    spot for the workloads here. *)
val recommended_domains : unit -> int

(** [map_array ~domains f a] is [Array.map f a] computed on [domains]
    domains (contiguous chunks). [domains <= 1], or arrays of fewer than 2
    elements, run sequentially. The first exception raised by any chunk is
    re-raised after all domains joined. Ordering of results matches the
    input regardless of scheduling. *)
val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init ~domains n f] is [Array.init n f], parallelised the same way. *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a array

(** [for_all ~domains f a] evaluates [f] on every element (no
    short-circuit across chunks) and conjoins. *)
val for_all : ?domains:int -> ('a -> bool) -> 'a array -> bool
