type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the non-negative 62-bit range to stay unbiased. *)
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let sample_distinct t ~n ~bound =
  if n < 0 || n > bound then invalid_arg "Rng.sample_distinct";
  (* Floyd's algorithm: O(n) expected, no O(bound) allocation. *)
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let j = bound - n + i in
    let r = int t (j + 1) in
    let v = if Hashtbl.mem seen r then j else r in
    Hashtbl.replace seen v ();
    out.(i) <- v
  done;
  out
