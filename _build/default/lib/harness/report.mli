(** Result tables for the experiment harness: aligned text rendering for
    the terminal and CSV export, with a [Missing] cell standing for a
    routing algorithm that refused a fabric (the paper's absent bars). *)

type cell =
  | Str of string
  | Int of int
  | Flt of float  (** rendered %.4f *)
  | Pct of float  (** fraction rendered as a signed percentage *)
  | Time of float  (** seconds, rendered adaptively *)
  | Missing

type table = {
  title : string;
  columns : string list;
  rows : cell list list;
  notes : string list;
}

val cell_to_string : cell -> string

(** Render with aligned columns, a title rule, and trailing notes. *)
val render : table -> string

val print : table -> unit

val to_csv : table -> string

(** [save_csv dir t] writes [<dir>/<slug-of-title>.csv] and returns the
    path. *)
val save_csv : dir:string -> table -> string
