(* Virtual-layer requirements are measured with a deliberately high layer
   budget so the experiments report the true demand rather than a
   failure. *)
let budget = 64

let vl_of name g =
  match Runs.run_named ~max_layers:budget name g with
  | Error _ -> None
  | Ok ft -> Some (Ftable.num_layers ft)

let min_avg_max samples =
  match samples with
  | [] -> [ Report.Missing; Report.Missing; Report.Missing ]
  | _ ->
    let n = float_of_int (List.length samples) in
    [
      Report.Int (List.fold_left min max_int samples);
      Report.Flt (float_of_int (List.fold_left ( + ) 0 samples) /. n);
      Report.Int (List.fold_left max 0 samples);
    ]

let fig9 ?(switches = 32) ?(switch_radix = 16) ?(terminals_per_switch = 8) ?links ?(trials = 10) ?(seed = 7) () =
  let links =
    match links with
    | Some l -> l
    | None ->
      (* sweep from just-connected to port-budget-bound *)
      let lo = switches + (switches / 4) in
      let hi = switches * (switch_radix - terminals_per_switch) / 2 in
      let step = max 1 ((hi - lo) / 6) in
      let rec up x = if x > hi then [] else x :: up (x + step) in
      up lo
  in
  let terminals = switches * terminals_per_switch in
  let rows =
    List.map
      (fun link_count ->
        let samples name =
          let out = ref [] in
          for t = 0 to trials - 1 do
            let rng = Rng.create ((seed * 10007) + (t * 31) + link_count) in
            let g =
              Topo_random.make ~switches ~switch_radix ~terminals ~inter_links:link_count ~rng
            in
            match vl_of name g with
            | Some v -> out := v :: !out
            | None -> ()
          done;
          !out
        in
        (Report.Int link_count :: min_avg_max (samples "lash")) @ min_avg_max (samples "dfsssp"))
      links
  in
  {
    Report.title =
      Printf.sprintf "Fig. 9: virtual layers on random topologies (%d switches x %d ports, %d terminals, %d seeds)"
        switches switch_radix terminals trials;
    columns =
      [ "#links"; "lash min"; "lash avg"; "lash max"; "dfsssp min"; "dfsssp avg"; "dfsssp max" ];
    rows;
    notes = [ "identical random fabrics are fed to both algorithms; layer budget 64" ];
  }

let fig10 ?(scale = 4) () =
  let algorithms = [ "updown"; "ftree"; "lash"; "dfsssp"; "dfsssp-online" ] in
  let rows =
    List.map
      (fun (s : Clusters.system) ->
        Report.Str (Printf.sprintf "%s(%d)" s.name (Graph.num_terminals s.graph))
        :: List.map
             (fun name ->
               match vl_of name s.graph with
               | Some v -> Report.Int v
               | None -> Report.Missing)
             algorithms)
      (Clusters.all ~scale ())
  in
  {
    Report.title = Printf.sprintf "Fig. 10: virtual layers required, real systems (scale 1/%d)" scale;
    columns = "fabric" :: algorithms;
    rows;
    notes = [];
  }

let heuristics ?(switches = 24) ?(switch_radix = 24) ?(terminals_per_switch = 12) ?(inter_links = 48)
    ?(trials = 10) ?(seed = 11) () =
  let terminals = switches * terminals_per_switch in
  let results =
    List.map
      (fun h ->
        let samples = ref [] in
        for t = 0 to trials - 1 do
          let rng = Rng.create ((seed * 7919) + t) in
          let g = Topo_random.make ~switches ~switch_radix ~terminals ~inter_links ~rng in
          match Dfsssp.route ~heuristic:h ~max_layers:budget g with
          | Ok ft -> samples := Ftable.num_layers ft :: !samples
          | Error _ -> ()
        done;
        (h, !samples))
      Heuristic.all
  in
  let rows =
    List.map
      (fun (h, samples) -> Report.Str (Heuristic.to_string h) :: min_avg_max samples)
      results
  in
  {
    Report.title =
      Printf.sprintf
        "Section IV: cycle-breaking heuristics on random topologies (%d switches, %d terminals, %d links, %d seeds)"
        switches terminals inter_links trials;
    columns = [ "heuristic"; "VL min"; "VL avg"; "VL max" ];
    rows;
    notes = [ "paper: weakest 3-5, first-edge 4-8, heaviest 4-16 layers" ];
  }
