type cell =
  | Str of string
  | Int of int
  | Flt of float
  | Pct of float
  | Time of float
  | Missing

type table = {
  title : string;
  columns : string list;
  rows : cell list list;
  notes : string list;
}

let cell_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Flt f -> Printf.sprintf "%.4f" f
  | Pct f -> Printf.sprintf "%+.1f%%" (100.0 *. f)
  | Time s ->
    if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
    else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
    else Printf.sprintf "%.2fs" s
  | Missing -> "-"

let render t =
  let header = t.columns in
  let body = List.map (List.map cell_to_string) t.rows in
  let ncols = List.length header in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri (fun i s -> if i < ncols && String.length s > widths.(i) then widths.(i) <- String.length s) row)
    body;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length t.title) '=');
  Buffer.add_char buf '\n';
  let emit_row cells =
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf "  ";
        let pad = if i < ncols then widths.(i) - String.length s else 0 in
        (* right-align everything but the first column *)
        if i = 0 then begin
          Buffer.add_string buf s;
          Buffer.add_string buf (String.make (max 0 pad) ' ')
        end
        else begin
          Buffer.add_string buf (String.make (max 0 pad) ' ');
          Buffer.add_string buf s
        end)
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Buffer.add_string buf (String.concat "  " (List.map (fun w -> String.make w '-') (Array.to_list widths)));
  Buffer.add_char buf '\n';
  List.iter emit_row body;
  List.iter
    (fun note ->
      Buffer.add_string buf "note: ";
      Buffer.add_string buf note;
      Buffer.add_char buf '\n')
    t.notes;
  Buffer.contents buf

let print t = print_string (render t)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (List.map csv_escape t.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map (fun c -> csv_escape (cell_to_string c)) row));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let slug title =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '_')
    (String.lowercase_ascii title)

let save_csv ~dir t =
  let path = Filename.concat dir (slug t.title ^ ".csv") in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv t));
  path
