let algorithms = [ "minhop"; "updown"; "lash"; "sssp"; "dfsssp"; "dfsssp-online" ]

let note = "wall-clock; includes virtual-layer assignment where the algorithm has one"

let fig7 ?(max_endpoints = 1024) () =
  let rows =
    List.map
      (fun (r : Tableone.row) ->
        let g = Tableone.tree_graph r in
        Report.Int r.Tableone.endpoints :: List.map (fun alg -> Runs.runtime_cell alg g) algorithms)
      (Tableone.rows_up_to max_endpoints)
  in
  {
    Report.title = "Fig. 7: routing runtime, k-ary n-tree";
    columns = "#endpoints" :: algorithms;
    rows;
    notes = [ note ];
  }

let fig8 ?(scale = 4) () =
  let rows =
    List.map
      (fun (s : Clusters.system) ->
        Report.Str (Printf.sprintf "%s(%d)" s.name (Graph.num_terminals s.graph))
        :: List.map (fun alg -> Runs.runtime_cell alg s.graph) algorithms)
      (Clusters.all ~scale ())
  in
  {
    Report.title = Printf.sprintf "Fig. 8: routing runtime, real systems (scale 1/%d)" scale;
    columns = "fabric" :: algorithms;
    rows;
    notes = [ note ];
  }
