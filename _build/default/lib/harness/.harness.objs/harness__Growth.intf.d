lib/harness/growth.mli: Graph Report
