lib/harness/runs.ml: Array Dfsssp Ftable Graph Printf Report Rng Simulator Unix
