lib/harness/growth.ml: Array Builder Channel Dfsssp Ftable Graph Hashtbl List Node Printf Report Result Rng Routing Runs Simulator Topo_xgft
