lib/harness/fig_runtime.mli: Report
