lib/harness/fault_tolerance.ml: Degrade Dfsssp Ftable List Printf Report Rng Runs Simulator Topo_torus Topo_xgft
