lib/harness/fig_bandwidth.ml: Clusters Graph List Printf Report Runs Tableone
