lib/harness/topospec.mli: Coords Graph
