lib/harness/fig_runtime.ml: Clusters Graph List Printf Report Runs Tableone
