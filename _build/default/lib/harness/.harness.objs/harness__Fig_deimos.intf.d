lib/harness/fig_deimos.mli: Report
