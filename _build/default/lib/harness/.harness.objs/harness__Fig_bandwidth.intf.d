lib/harness/fig_bandwidth.mli: Report
