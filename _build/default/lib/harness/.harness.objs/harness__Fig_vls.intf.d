lib/harness/fig_vls.mli: Report
