lib/harness/tableone.ml: Array Graph List Printf Report String Topo_kautz Topo_tree Topo_xgft
