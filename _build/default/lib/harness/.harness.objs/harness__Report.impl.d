lib/harness/report.ml: Array Buffer Filename Fun List Printf String
