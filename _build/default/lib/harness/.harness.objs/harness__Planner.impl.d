lib/harness/planner.ml: Array Builder Channel Graph Hashtbl List Node Rng Runs Simulator
