lib/harness/runs.mli: Coords Ftable Graph Report Rng
