lib/harness/report.mli:
