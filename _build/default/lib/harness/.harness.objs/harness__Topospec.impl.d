lib/harness/topospec.ml: Array Clusters Coords Graph List Printf Result Rng Serial String Topo_dragonfly Topo_hypercube Topo_hyperx Topo_kautz Topo_random Topo_ring Topo_torus Topo_tree Topo_xgft
