lib/harness/fig_vls.ml: Clusters Dfsssp Ftable Graph Heuristic List Printf Report Rng Runs Topo_random
