lib/harness/planner.mli: Graph
