lib/harness/tableone.mli: Graph Report
