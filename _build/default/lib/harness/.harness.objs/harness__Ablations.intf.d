lib/harness/ablations.mli: Report
