lib/harness/fig_deimos.ml: Array Clusters Fun Graph List Option Parallel Printf Report Rng Runs Simulator
