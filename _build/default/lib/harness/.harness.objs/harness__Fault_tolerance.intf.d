lib/harness/fault_tolerance.mli: Report
