(** The Deimos measurement campaign of the paper's Section VI, replayed on
    the Deimos stand-in fabric through the static congestion model:
    Fig. 12 (Netgauge effective bisection bandwidth over core counts),
    Fig. 13 (all-to-all time vs. message size), Figs. 14–16 (NAS BT/SP/FT
    scaling) and Table II (NAS improvements at 1024 cores).

    Ranks are scattered over the fabric like a batch-system allocation
    (seeded random node set, multiple ranks per node once the node pool is
    exhausted, as on the real machine). NAS performance is a two-term
    model [T = serial_work/p + bytes_per_pair(p) * congestion / bandwidth]
    whose constants are documented in EXPERIMENTS.md; the reproduced
    quantity is the routing-induced ratio, not absolute Gflop/s. *)

(** Algorithms shown in the Section VI plots. *)
val algorithms : string list

val fig12 : ?scale:int -> ?cores:int list -> ?patterns:int -> ?seed:int -> unit -> Report.table

(** Fig. 12 on the discrete-event simulator ({!Simulator.Netsim}): each
    pair of a random matching ships [1 MiB]; the cell is the mean achieved
    pair bandwidth in MB/s. Dynamic effects (head-of-line blocking, credit
    stalls) widen the routing gap the static model compresses; this is the
    closest analogue of the paper's Netgauge measurement. Expensive —
    [matchings] per cell (default 3). *)
val fig12_dynamic :
  ?scale:int -> ?cores:int list -> ?matchings:int -> ?seed:int -> unit -> Report.table

val fig13 : ?scale:int -> ?cores:int -> ?float_counts:int list -> ?seed:int -> unit -> Report.table

(** [nas_figure ~kernel ...] is one of Figs. 14–16 (or the CG/MG/LU
    variants the paper omits); rows are core counts, cells the modelled
    relative Gflop/s (higher is better, arbitrary units). *)
val nas_figure : kernel:string -> ?scale:int -> ?cores:int list -> ?seed:int -> unit -> (Report.table, string) result

val fig14 : ?scale:int -> ?cores:int list -> ?seed:int -> unit -> Report.table

val fig15 : ?scale:int -> ?cores:int list -> ?seed:int -> unit -> Report.table

val fig16 : ?scale:int -> ?cores:int list -> ?seed:int -> unit -> Report.table

(** Table II: modelled DFSSSP-vs-MinHop improvement for all six kernels at
    1024 (scaled) cores. *)
val table2 : ?scale:int -> ?cores:int -> ?seed:int -> unit -> Report.table
