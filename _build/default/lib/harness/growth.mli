(** The "machines grow over time" experiment behind the paper's
    introduction: start from a clean fat tree and apply the kinds of
    extension real sites make — bolt on a second island with a few trunk
    cables, attach doubly-homed service switches, splice in a legacy ring
    segment — and watch which routings survive each stage and at what
    bandwidth/lane cost. *)

type stage = {
  label : string;
  graph : Graph.t;
}

(** The four-stage growth story (clean tree, +island, +service, +ring). *)
val stages : unit -> stage list

(** One row per stage: which specialists still route, eBB of the
    generalists, DFSSSP's lane count. *)
val sweep : ?patterns:int -> ?seed:int -> unit -> Report.table
