let algorithms = [ "minhop"; "lash"; "dfsssp" ]

(* Deimos point-to-point peak (paper: PCIe 1.1 HCAs). *)
let link_bandwidth = 946e6

(* Scatter [cores] MPI ranks over the fabric: a random node subset first
   (one rank per node), then round-robin (multi-core nodes), as the paper
   did for its 1024-core runs on 250 nodes. Returns rank -> terminal. *)
let place_ranks ~rng ~cores g =
  let terminals = Array.copy (Graph.terminals g) in
  Rng.shuffle rng terminals;
  let n = Array.length terminals in
  Array.init cores (fun i -> terminals.(i mod n))

let map_flows rank_of flows = Array.map (fun (a, b) -> (rank_of.(a), rank_of.(b))) flows

let routed_systems ~scale =
  let g = (Clusters.deimos ~scale ()).Clusters.graph in
  let fts =
    List.filter_map
      (fun name ->
        match Runs.run_named name g with
        | Ok ft -> Some (name, ft)
        | Error _ -> None)
      algorithms
  in
  (g, fts)

let scale_cores scale cores = List.map (fun c -> max 4 (c / scale)) cores

let fig12 ?(scale = 4) ?cores ?(patterns = 50) ?(seed = 3) () =
  let cores = Option.value ~default:(scale_cores scale [ 128; 256; 512; 1024 ]) cores in
  let g, fts = routed_systems ~scale in
  let rows =
    List.map
      (fun c ->
        let rng = Rng.create ((seed * 131) + c) in
        let ranks = Runs.sample_ranks ~rng ~count:c g in
        Report.Int c
        :: List.map
             (fun name ->
               match List.assoc_opt name fts with
               | None -> Report.Missing
               | Some ft ->
                 let rng = Rng.create ((seed * 977) + c) in
                 let ebb =
                   Simulator.Congestion.effective_bisection_bandwidth ~patterns ~ranks ~rng ft
                 in
                 Report.Flt ebb.Simulator.Congestion.samples.Simulator.Metrics.mean)
             algorithms)
      cores
  in
  {
    Report.title = Printf.sprintf "Fig. 12: Netgauge-style eBB on Deimos stand-in (scale 1/%d)" scale;
    columns = "cores" :: algorithms;
    rows;
    notes = [ Printf.sprintf "%d random pairings per cell; share of wire speed per pair" patterns ];
  }

let fig12_dynamic ?(scale = 4) ?cores ?(matchings = 3) ?(seed = 3) () =
  let cores = Option.value ~default:(scale_cores scale [ 128; 256; 512; 1024 ]) cores in
  let g, fts = routed_systems ~scale in
  let bytes = 1 lsl 20 in
  let rows =
    List.map
      (fun c ->
        let cell name =
          match List.assoc_opt name fts with
          | None -> Report.Missing
          | Some ft ->
            (* matchings are independent: fan out over domains *)
            let per_matching =
              Parallel.init ~domains:(Parallel.recommended_domains ()) matchings (fun m ->
                  let rng = Rng.create ((seed * 389) + (m * 17) + c) in
                  let ranks = Runs.sample_ranks ~rng ~count:c g in
                  let pairs = Simulator.Patterns.random_bisection rng ranks in
                  let flows = Array.map (fun (a, b) -> (a, b, bytes)) pairs in
                  match Simulator.Netsim.run ft ~flows with
                  | Simulator.Netsim.Completed { flows = st; _ } ->
                    Array.to_list (Array.map Simulator.Netsim.bandwidth_of st)
                  | Simulator.Netsim.Deadlocked _ | Simulator.Netsim.Out_of_events _ -> [])
            in
            (match List.concat (Array.to_list per_matching) with
            | [] -> Report.Missing
            | l ->
              let mean = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
              Report.Flt (mean /. 1e6))
        in
        Report.Int c :: List.map cell algorithms)
      cores
  in
  {
    Report.title =
      Printf.sprintf "Fig. 12 (dynamic): achieved pair bandwidth [MB/s] on Deimos stand-in (scale 1/%d)"
        scale;
    columns = "cores" :: algorithms;
    rows;
    notes =
      [
        Printf.sprintf "discrete-event simulation, %d matchings x 1 MiB per pair, 1 GB/s links" matchings;
        "dynamic head-of-line effects included - compare against the static Fig. 12";
      ];
  }

let fig13 ?(scale = 4) ?cores ?(float_counts = [ 4; 16; 64; 256; 1024; 4096 ]) ?(seed = 5) () =
  let cores = Option.value ~default:(max 4 (128 / scale)) cores in
  let g, fts = routed_systems ~scale in
  let rng = Rng.create seed in
  let rank_terminal = place_ranks ~rng ~cores g in
  let rank_ids = Array.init cores Fun.id in
  let flows = map_flows rank_terminal (Simulator.Patterns.all_to_all rank_ids) in
  let rows =
    List.map
      (fun floats ->
        let bytes = float_of_int (floats * 4) in
        Report.Int floats
        :: List.map
             (fun name ->
               match List.assoc_opt name fts with
               | None -> Report.Missing
               | Some ft ->
                 Report.Time
                   (Simulator.Congestion.completion_time ft ~flows ~bytes ~bandwidth:link_bandwidth))
             algorithms)
      float_counts
  in
  {
    Report.title =
      Printf.sprintf "Fig. 13: all-to-all completion vs message size, %d ranks, Deimos stand-in (scale 1/%d)"
        cores scale;
    columns = "floats" :: algorithms;
    rows;
    notes = [ "static congestion model: time = bytes * bottleneck-load / link-bandwidth" ];
  }

(* NAS kernel model constants: serial work (seconds of aggregated compute,
   arbitrary calibration), per-pair bytes at the reference core count, and
   the strong-scaling exponent of the per-pair message size. The absolute
   units cancel in the MinHop-vs-DFSSSP comparison the paper reports. *)
type kernel_model = {
  pattern : int array -> (Simulator.Patterns.flow array, string) result;
  serial_work : float;
  bytes_at_ref : float; (* per-pair bytes at ref_cores *)
  ref_cores : int;
  size_exponent : float; (* bytes(p) = bytes_at_ref * (ref/p)^e *)
}

let kernel_models =
  [
    ("BT", { pattern = Simulator.Patterns.nas_bt; serial_work = 600.0; bytes_at_ref = 2.0e7; ref_cores = 128; size_exponent = 0.5 });
    ("SP", { pattern = Simulator.Patterns.nas_sp; serial_work = 400.0; bytes_at_ref = 3.0e7; ref_cores = 128; size_exponent = 0.5 });
    ("FT", { pattern = Simulator.Patterns.nas_ft; serial_work = 300.0; bytes_at_ref = 3.0e6; ref_cores = 128; size_exponent = 2.0 });
    ("CG", { pattern = Simulator.Patterns.nas_cg; serial_work = 250.0; bytes_at_ref = 2.0e7; ref_cores = 128; size_exponent = 1.0 });
    ("LU", { pattern = Simulator.Patterns.nas_lu; serial_work = 500.0; bytes_at_ref = 1.0e7; ref_cores = 128; size_exponent = 0.5 });
    ("MG", { pattern = Simulator.Patterns.nas_mg; serial_work = 350.0; bytes_at_ref = 1.5e7; ref_cores = 128; size_exponent = 1.0 });
  ]

(* BT/SP need square rank counts; the paper uses 121/256/484/1024. *)
let default_cores kernel =
  match kernel with
  | "BT" | "SP" -> [ 121; 256; 484; 1024 ]
  | _ -> [ 128; 256; 512; 1024 ]

let square_down n =
  let r = int_of_float (sqrt (float_of_int n)) in
  let r = if (r + 1) * (r + 1) <= n then r + 1 else r in
  max 2 r * max 2 r

let pow2_down n =
  let rec go p = if p * 2 <= n then go (p * 2) else p in
  go 1

(* Scaled-down runs keep each kernel's rank-count constraint. *)
let fit_cores kernel c =
  match kernel with
  | "BT" | "SP" -> square_down c
  | "FT" | "CG" | "MG" -> max 2 (pow2_down c)
  | _ -> max 2 c

(* Per-iteration time: perfectly-scaling compute plus sustained-rate
   communication. The communication term uses the MEAN bottleneck load
   over flows (1/mean share), the same quantity as effective bisection
   bandwidth: NAS kernels overlap many exchanges, so sustained throughput,
   not the single worst flow, gates the iteration. *)
let kernel_time model ~flows ~cores ~routing_ft =
  let bytes =
    model.bytes_at_ref *. ((float_of_int model.ref_cores /. float_of_int cores) ** model.size_exponent)
  in
  let r = Simulator.Congestion.evaluate routing_ft ~flows in
  let mean_bottleneck = 1.0 /. r.Simulator.Congestion.mean_share in
  let t_comm = bytes *. mean_bottleneck /. link_bandwidth in
  let t_comp = model.serial_work /. float_of_int cores in
  t_comp +. t_comm

let nas_figure ~kernel ?(scale = 4) ?cores ?(seed = 9) () =
  match List.assoc_opt kernel kernel_models with
  | None -> Error (Printf.sprintf "unknown NAS kernel %S" kernel)
  | Some model ->
    let cores = Option.value ~default:(scale_cores scale (default_cores kernel)) cores in
    let cores = List.sort_uniq compare (List.map (fit_cores kernel) cores) in
    let g, fts = routed_systems ~scale in
    let rows =
      List.filter_map
        (fun c ->
          let rng = Rng.create ((seed * 131) + c) in
          let rank_terminal = place_ranks ~rng ~cores:c g in
          let rank_ids = Array.init c Fun.id in
          match model.pattern rank_ids with
          | Error _ -> None
          | Ok flows_idx ->
            let flows = map_flows rank_terminal flows_idx in
            Some
              (Report.Int c
              :: List.map
                   (fun name ->
                     match List.assoc_opt name fts with
                     | None -> Report.Missing
                     | Some ft ->
                       let t = kernel_time model ~flows ~cores:c ~routing_ft:ft in
                       (* arbitrary Gflop/s scale: total work / time *)
                       Report.Flt (model.serial_work /. t))
                   algorithms))
        cores
    in
    Ok
      {
        Report.title =
          Printf.sprintf "NAS %s scaling on Deimos stand-in (scale 1/%d, modelled Gflop/s)" kernel scale;
        columns = "cores" :: algorithms;
        rows;
        notes = [ "two-term performance model; constants in EXPERIMENTS.md; ratios are the result" ];
      }

let get_figure kernel ?scale ?cores ?seed () =
  match nas_figure ~kernel ?scale ?cores ?seed () with
  | Ok t -> t
  | Error msg -> { Report.title = msg; columns = []; rows = []; notes = [] }

let fig14 ?scale ?cores ?seed () = get_figure "BT" ?scale ?cores ?seed ()

let fig15 ?scale ?cores ?seed () = get_figure "SP" ?scale ?cores ?seed ()

let fig16 ?scale ?cores ?seed () = get_figure "FT" ?scale ?cores ?seed ()

let table2 ?(scale = 4) ?cores ?(seed = 9) () =
  let cores = Option.value ~default:(max 16 (1024 / scale)) cores in
  let g, fts = routed_systems ~scale in
  let rows =
    List.filter_map
      (fun (kernel, model) ->
        let c = fit_cores kernel cores in
        let rng = Rng.create ((seed * 131) + c) in
        let rank_terminal = place_ranks ~rng ~cores:c g in
        let rank_ids = Array.init c Fun.id in
        match model.pattern rank_ids with
        | Error _ -> None
        | Ok flows_idx ->
          let flows = map_flows rank_terminal flows_idx in
          let perf name =
            match List.assoc_opt name fts with
            | None -> None
            | Some ft -> Some (model.serial_work /. kernel_time model ~flows ~cores:c ~routing_ft:ft)
          in
          (match (perf "minhop", perf "dfsssp") with
          | Some base, Some ours ->
            Some
              [
                Report.Str kernel;
                Report.Int c;
                Report.Flt base;
                Report.Flt ours;
                Report.Pct ((ours -. base) /. base);
              ]
          | _ -> None))
      kernel_models
  in
  {
    Report.title = Printf.sprintf "Table II: NAS kernels at %d (scaled) cores, Deimos stand-in" cores;
    columns = [ "kernel"; "cores"; "minhop"; "dfsssp"; "improvement" ];
    rows;
    notes = [ "paper reports +30.6% .. +95.1% at 1024 cores on the real machine" ];
  }
