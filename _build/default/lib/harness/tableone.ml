type xgft_params = {
  ms : int array;
  ws : int array;
}

type row = {
  endpoints : int;
  xgft : xgft_params;
  kautz_b : int;
  kautz_n : int;
  tree_k : int;
  tree_n : int;
}

(* Paper Table I (36-port switches). Nominal endpoint counts are spread
   round-robin over the leaf switches of each generator. *)
let rows =
  [
    { endpoints = 64; xgft = { ms = [| 6 |]; ws = [| 3 |] }; kautz_b = 2; kautz_n = 2; tree_k = 6; tree_n = 2 };
    {
      endpoints = 128;
      xgft = { ms = [| 10 |]; ws = [| 5 |] };
      kautz_b = 2;
      kautz_n = 2;
      tree_k = 10;
      tree_n = 2;
    };
    {
      endpoints = 256;
      xgft = { ms = [| 16 |]; ws = [| 8 |] };
      kautz_b = 2;
      kautz_n = 3;
      tree_k = 16;
      tree_n = 2;
    };
    {
      endpoints = 512;
      xgft = { ms = [| 6; 6 |]; ws = [| 3; 3 |] };
      kautz_b = 3;
      kautz_n = 3;
      tree_k = 6;
      tree_n = 3;
    };
    {
      endpoints = 1024;
      xgft = { ms = [| 10; 10 |]; ws = [| 5; 5 |] };
      kautz_b = 3;
      kautz_n = 3;
      tree_k = 10;
      tree_n = 3;
    };
    {
      endpoints = 2048;
      xgft = { ms = [| 14; 14 |]; ws = [| 7; 7 |] };
      kautz_b = 4;
      kautz_n = 3;
      tree_k = 14;
      tree_n = 3;
    };
    {
      endpoints = 4096;
      xgft = { ms = [| 18; 18 |]; ws = [| 9; 9 |] };
      kautz_b = 6;
      kautz_n = 3;
      tree_k = 18;
      tree_n = 3;
    };
  ]

let rows_up_to n = List.filter (fun r -> r.endpoints <= n) rows

let xgft_graph r = Topo_xgft.make ~ms:r.xgft.ms ~ws:r.xgft.ws ~endpoints:r.endpoints

let kautz_graph r = Topo_kautz.make ~b:r.kautz_b ~n:r.kautz_n ~endpoints:r.endpoints

let tree_graph r = Topo_tree.make ~k:r.tree_k ~n:r.tree_n ~endpoints:r.endpoints ()

let describe_xgft p =
  Printf.sprintf "XGFT(%d;%s;%s)" (Array.length p.ms)
    (String.concat "," (Array.to_list (Array.map string_of_int p.ms)))
    (String.concat "," (Array.to_list (Array.map string_of_int p.ws)))

let table () =
  let rows_cells =
    List.map
      (fun r ->
        let xg = xgft_graph r and kg = kautz_graph r and tg = tree_graph r in
        [
          Report.Int r.endpoints;
          Report.Str (describe_xgft r.xgft);
          Report.Int (Graph.num_switches xg);
          Report.Str (Printf.sprintf "Kautz(%d;%d)" r.kautz_b r.kautz_n);
          Report.Int (Graph.num_switches kg);
          Report.Str (Printf.sprintf "%d-ary %d-tree" r.tree_k r.tree_n);
          Report.Int (Graph.num_switches tg);
        ])
      rows
  in
  {
    Report.title = "Table I: topology parameters (switch counts are generated sizes)";
    columns = [ "#endpoints"; "XGFT"; "sw"; "Kautz"; "sw"; "k-ary n-tree"; "sw" ];
    rows = rows_cells;
    notes = [ "nominal endpoints are distributed round-robin over leaf switches (36-port switch budget)" ];
  }
