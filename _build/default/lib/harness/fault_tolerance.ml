type fabric =
  | Torus
  | Fat_tree

let fabric_to_string = function
  | Torus -> "6x6 torus"
  | Fat_tree -> "XGFT(2;4,4;2,2), 64 endpoints"

let build = function
  | Torus ->
    let g, coords = Topo_torus.torus ~dims:[| 6; 6 |] ~terminals_per_switch:1 in
    (g, Some coords, "dor")
  | Fat_tree -> (Topo_xgft.make ~ms:[| 4; 4 |] ~ws:[| 2; 2 |] ~endpoints:64, None, "ftree")

let specialist_cell ?coords name g =
  match Runs.run_named ?coords name g with
  | Error _ -> Report.Str "refused"
  | Ok ft ->
    if Dfsssp.Verify.deadlock_free ft then
      match Ftable.validate ft with
      | Ok s when s.Ftable.minimal -> Report.Str "ok"
      | Ok _ -> Report.Str "ok (detours)"
      | Error _ -> Report.Str "BROKEN"
    else Report.Str "UNSAFE"

let sweep ~fabric ?(removals = [ 0; 2; 4; 8 ]) ?(patterns = 30) ?(seed = 31) () =
  let g0, coords, specialist = build fabric in
  let rows =
    List.map
      (fun removed ->
        let rng = Rng.create (seed + removed) in
        let g, actually_removed =
          if removed = 0 then (g0, 0) else Degrade.remove_cables g0 ~rng ~count:removed
        in
        let ebb name =
          match Runs.run_named ?coords name g with
          | Error _ -> Report.Missing
          | Ok ft ->
            let rng = Rng.create (seed * 53) in
            Report.Flt
              (Simulator.Congestion.effective_bisection_bandwidth ~patterns ~rng ft)
                .Simulator.Congestion.samples
                .Simulator.Metrics.mean
        in
        let dfsssp_vls =
          match Runs.run_named "dfsssp" g with
          | Error _ -> Report.Missing
          | Ok ft -> Report.Int (Ftable.num_layers ft)
        in
        [
          Report.Int actually_removed;
          specialist_cell ?coords specialist g;
          ebb "updown";
          ebb "minhop";
          ebb "dfsssp";
          dfsssp_vls;
        ])
      removals
  in
  {
    Report.title =
      Printf.sprintf "Fault tolerance: cable removal on %s (specialist: %s)" (fabric_to_string fabric)
        specialist;
    columns =
      [ "cables removed"; specialist; "updown eBB"; "minhop eBB"; "dfsssp eBB"; "dfsssp VLs" ];
    rows;
    notes =
      [
        "removals preserve connectivity (operator drains redundant cables)";
        "UNSAFE = routes but with a cyclic dependency graph; refused = no routing produced";
      ];
  }
