type stage = {
  label : string;
  graph : Graph.t;
}

(* Rebuild [g] inside [builder], returning the switch remap. *)
let import builder g =
  let remap = Array.make (Graph.num_nodes g) (-1) in
  Array.iter
    (fun (nd : Node.t) ->
      if Node.is_switch nd then remap.(nd.id) <- Builder.add_switch builder ~name:nd.name)
    (Graph.nodes g);
  Array.iter
    (fun (nd : Node.t) ->
      if Node.is_terminal nd then begin
        let attach = (Graph.channel g (Graph.out_channels g nd.id).(0)).Channel.dst in
        remap.(nd.id) <- Builder.add_terminal builder ~name:nd.name ~switch:remap.(attach)
      end)
    (Graph.nodes g);
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.id with
      | Some r when r < c.id -> ()
      | _ ->
        if Graph.is_switch g c.src && Graph.is_switch g c.dst then begin
          let (_ : int * int) = Builder.add_link builder remap.(c.src) remap.(c.dst) in
          ()
        end)
    (Graph.channels g);
  remap

let leaf_switches g =
  Array.of_list
    (List.filter
       (fun sw ->
         Array.exists
           (fun c -> Graph.is_terminal g (Graph.channel g c).Channel.dst)
           (Graph.out_channels g sw))
       (Array.to_list (Graph.switches g)))

let stages () =
  (* stage 1: a clean 2-level fat tree island *)
  let island () = Topo_xgft.make ~ms:[| 4; 4 |] ~ws:[| 2; 2 |] ~endpoints:48 in
  let s1 = island () in
  (* stage 2: second island, 2 trunk cables between leaf switches *)
  let build_s2 () =
    let b = Builder.create () in
    let g1 = island () in
    let r1 = import b g1 in
    let g2 = island () in
    (* rename second island to avoid clashes: rebuild with a prefix *)
    let rename = Hashtbl.create 64 in
    Array.iter
      (fun (nd : Node.t) -> Hashtbl.replace rename nd.id ("b_" ^ nd.name))
      (Graph.nodes g2);
    let remap2 = Array.make (Graph.num_nodes g2) (-1) in
    Array.iter
      (fun (nd : Node.t) ->
        if Node.is_switch nd then
          remap2.(nd.id) <- Builder.add_switch b ~name:(Hashtbl.find rename nd.id))
      (Graph.nodes g2);
    Array.iter
      (fun (nd : Node.t) ->
        if Node.is_terminal nd then begin
          let attach = (Graph.channel g2 (Graph.out_channels g2 nd.id).(0)).Channel.dst in
          remap2.(nd.id) <- Builder.add_terminal b ~name:(Hashtbl.find rename nd.id) ~switch:remap2.(attach)
        end)
      (Graph.nodes g2);
    Array.iter
      (fun (c : Channel.t) ->
        match Graph.reverse_channel g2 c.id with
        | Some r when r < c.id -> ()
        | _ ->
          if Graph.is_switch g2 c.src && Graph.is_switch g2 c.dst then begin
            let (_ : int * int) = Builder.add_link b remap2.(c.src) remap2.(c.dst) in
            ()
          end)
      (Graph.channels g2);
    let leaves1 = leaf_switches g1 and leaves2 = leaf_switches g2 in
    let (_ : int * int) = Builder.add_link b r1.(leaves1.(0)) remap2.(leaves2.(0)) in
    let (_ : int * int) = Builder.add_link b r1.(leaves1.(1)) remap2.(leaves2.(1)) in
    (b, r1, g1)
  in
  let s2 =
    let b, _, _ = build_s2 () in
    Builder.build b
  in
  (* stage 3: + doubly-homed service switch into island A's spines *)
  let add_service b r1 g1 =
    let levels = Result.get_ok (Routing.Ftree.levels g1) in
    let spines =
      Array.of_list
        (List.filter (fun sw -> levels.(sw) = 2) (Array.to_list (Graph.switches g1)))
    in
    let svc = Builder.add_switch b ~name:"svc" in
    let (_ : int * int) = Builder.add_link b svc r1.(spines.(0)) in
    let (_ : int * int) = Builder.add_link b svc r1.(spines.(1)) in
    for i = 0 to 3 do
      let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "svc_n%d" i) ~switch:svc in
      ()
    done;
    svc
  in
  let s3 =
    let b, r1, g1 = build_s2 () in
    let (_ : int) = add_service b r1 g1 in
    Builder.build b
  in
  (* stage 4: + legacy ring segment hanging off the service switch *)
  let s4 =
    let b, r1, g1 = build_s2 () in
    let svc = add_service b r1 g1 in
    let ring = Array.init 3 (fun i -> Builder.add_switch b ~name:(Printf.sprintf "ring%d" i)) in
    for i = 0 to 2 do
      let (_ : int * int) = Builder.add_link b ring.(i) ring.((i + 1) mod 3) in
      let (_ : int) = Builder.add_terminal b ~name:(Printf.sprintf "ring_n%d" i) ~switch:ring.(i) in
      ()
    done;
    let (_ : int * int) = Builder.add_link b svc ring.(0) in
    Builder.build b
  in
  [
    { label = "clean fat tree"; graph = s1 };
    { label = "+ second island (2 trunks)"; graph = s2 };
    { label = "+ service switch"; graph = s3 };
    { label = "+ legacy ring"; graph = s4 };
  ]

let sweep ?(patterns = 30) ?(seed = 43) () =
  let rows =
    List.map
      (fun stage ->
        let g = stage.graph in
        let status name =
          match Runs.run_named name g with
          | Error _ -> Report.Str "refused"
          | Ok ft ->
            if Dfsssp.Verify.deadlock_free ft then Report.Str "ok" else Report.Str "UNSAFE"
        in
        let ebb name =
          match Runs.run_named name g with
          | Error _ -> Report.Missing
          | Ok ft ->
            let rng = Rng.create seed in
            Report.Flt
              (Simulator.Congestion.effective_bisection_bandwidth ~patterns ~rng ft)
                .Simulator.Congestion.samples
                .Simulator.Metrics.mean
        in
        let vls =
          match Runs.run_named "dfsssp" g with
          | Error _ -> Report.Missing
          | Ok ft -> Report.Int (Ftable.num_layers ft)
        in
        [
          Report.Str stage.label;
          Report.Int (Graph.num_terminals g);
          status "ftree";
          status "minhop";
          ebb "minhop";
          ebb "dfsssp";
          vls;
        ])
      (stages ())
  in
  {
    Report.title = "Growth: a fat tree accretes extensions (the paper's introduction, staged)";
    columns = [ "stage"; "nodes"; "ftree"; "minhop"; "minhop eBB"; "dfsssp eBB"; "dfsssp VLs" ];
    rows;
    notes = [ "UNSAFE = routes but with a cyclic dependency graph" ];
  }
