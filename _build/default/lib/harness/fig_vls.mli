(** Virtual-layer-count experiments: the paper's Fig. 9 (random
    topologies, LASH vs DFSSSP, min/avg/max over seeds as the inter-switch
    link count varies), Fig. 10 (real systems) and the Section IV
    heuristic comparison. *)

(** [fig9 ?switches ?switch_radix ?terminals_per_switch ?links ?trials
    ?seed ()] — defaults are a scaled-down instance (32 switches, radix
    16, 8 terminals each, 10 seeds); pass [~switches:128 ~switch_radix:32
    ~terminals_per_switch:16 ~trials:100] for the paper's full setting. *)
val fig9 :
  ?switches:int ->
  ?switch_radix:int ->
  ?terminals_per_switch:int ->
  ?links:int list ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.table

val fig10 : ?scale:int -> unit -> Report.table

(** The Section IV heuristic study: virtual layers needed by each
    cycle-breaking heuristic on random topologies (paper: 64 switches,
    1024 endpoints, 128 links). *)
val heuristics :
  ?switches:int ->
  ?switch_radix:int ->
  ?terminals_per_switch:int ->
  ?inter_links:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.table
