(** Fault-tolerance sweeps — the experiment behind the paper's motivation:
    specialized routings (DOR, FatTree) carry their guarantees only on the
    intact topology they were designed for, while DFSSSP keeps routing
    any connected remainder deadlock-free. Cables are removed one batch at
    a time (connectivity-preserving, see {!Netgraph.Degrade}) and every
    algorithm is re-run on each degraded fabric. *)

type fabric =
  | Torus  (** 6x6 wrap-around torus — DOR's home ground *)
  | Fat_tree  (** XGFT(2;4,4;2,2) with 64 endpoints — ftree's home ground *)

val fabric_to_string : fabric -> string

(** [sweep ~fabric ?removals ?patterns ?seed ()] removes the given numbers
    of cables cumulatively and reports, per step: whether the specialist
    (DOR or ftree) still routes and is still deadlock-free, and the
    bandwidth and lane count of the generalists. *)
val sweep : fabric:fabric -> ?removals:int list -> ?patterns:int -> ?seed:int -> unit -> Report.table
