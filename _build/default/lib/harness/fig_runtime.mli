(** Routing-runtime experiments: the paper's Fig. 7 (k-ary n-tree sweep)
    and Fig. 8 (real systems). Wall-clock seconds to compute the complete
    routing (tables plus, where applicable, the virtual-layer
    assignment). *)

val fig7 : ?max_endpoints:int -> unit -> Report.table

val fig8 : ?scale:int -> unit -> Report.table
