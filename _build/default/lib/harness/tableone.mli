(** The paper's Table I: the parameterisations used to generate XGFT,
    Kautz, and k-ary n-tree fabrics of each nominal size (36-port
    switches). Exposed as data so the sweep experiments (Figs. 5–7) and
    the [table1] bench consume the exact same instances. *)

type xgft_params = {
  ms : int array;
  ws : int array;
}

type row = {
  endpoints : int;  (** nominal endpoint count, the paper's first column *)
  xgft : xgft_params;
  kautz_b : int;
  kautz_n : int;
  tree_k : int;
  tree_n : int;
}

val rows : row list

(** Rows up to and including the given nominal size. *)
val rows_up_to : int -> row list

val xgft_graph : row -> Graph.t

val kautz_graph : row -> Graph.t

val tree_graph : row -> Graph.t

(** Rendered Table I with the actual node counts of our generators. *)
val table : unit -> Report.table
