type suggestion = {
  from_switch : string;
  to_switch : string;
  ebb_before : float;
  ebb_after : float;
  gain : float;
}

let ebb_of ?ranks ft ~patterns ~seed =
  let rng = Rng.create seed in
  (Simulator.Congestion.effective_bisection_bandwidth ~patterns ?ranks ~rng ft)
    .Simulator.Congestion.samples
    .Simulator.Metrics.mean

(* Copy [g] and lay one extra cable between the named switches. *)
let with_cable g ~a ~b =
  let builder = Builder.create () in
  let remap = Array.make (Graph.num_nodes g) (-1) in
  Array.iter
    (fun (nd : Node.t) ->
      if Node.is_switch nd then remap.(nd.id) <- Builder.add_switch builder ~name:nd.name)
    (Graph.nodes g);
  Array.iter
    (fun (nd : Node.t) ->
      if Node.is_terminal nd then begin
        let attach = (Graph.channel g (Graph.out_channels g nd.id).(0)).Channel.dst in
        remap.(nd.id) <- Builder.add_terminal builder ~name:nd.name ~switch:remap.(attach)
      end)
    (Graph.nodes g);
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.id with
      | Some r when r < c.id -> ()
      | _ ->
        if Graph.is_switch g c.src && Graph.is_switch g c.dst then begin
          let (_ : int * int) = Builder.add_link builder remap.(c.src) remap.(c.dst) in
          ()
        end)
    (Graph.channels g);
  let (_ : int * int) = Builder.add_link builder remap.(a) remap.(b) in
  Builder.build builder

let suggest ?(candidates = 8) ?(patterns = 30) ?(seed = 41) ~algorithm g =
  match Runs.run_named algorithm g with
  | Error msg -> Error msg
  | Ok base_ft ->
    let base = ebb_of base_ft ~patterns ~seed in
    (* candidate endpoints: switches touching the hottest channels under a
       random bisection load, paired greedily, plus random controls *)
    let rng = Rng.create (seed * 31) in
    let flows = Simulator.Patterns.random_bisection rng (Graph.terminals g) in
    let hot = Simulator.Congestion.hotspots ~top:(2 * candidates) base_ft ~flows in
    let switch_named name =
      let found = ref (-1) in
      Array.iter (fun sw -> if (Graph.node g sw).Node.name = name then found := sw) (Graph.switches g);
      !found
    in
    let pairs = Hashtbl.create 16 in
    let add_pair a b = if a >= 0 && b >= 0 && a <> b then Hashtbl.replace pairs (min a b, max a b) () in
    (* parallel relief for each hot channel between two switches *)
    List.iter
      (fun (h : Simulator.Congestion.hotspot) ->
        let a = switch_named h.Simulator.Congestion.src_name
        and b = switch_named h.Simulator.Congestion.dst_name in
        add_pair a b)
      hot;
    (* shortcuts bridging consecutive hot channels (two-hop funnels) *)
    List.iteri
      (fun i (h : Simulator.Congestion.hotspot) ->
        List.iteri
          (fun j (h' : Simulator.Congestion.hotspot) ->
            if i < j && h.Simulator.Congestion.dst_name = h'.Simulator.Congestion.src_name then
              add_pair
                (switch_named h.Simulator.Congestion.src_name)
                (switch_named h'.Simulator.Congestion.dst_name))
          hot)
      hot;
    (* random controls *)
    let switches = Graph.switches g in
    if Array.length switches >= 2 then
      for _ = 1 to 2 do
        let a = Rng.pick rng switches and b = Rng.pick rng switches in
        add_pair a b
      done;
    let all = Hashtbl.fold (fun k () acc -> k :: acc) pairs [] in
    let all = List.sort compare all in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    let evaluated =
      List.filter_map
        (fun (a, b) ->
          let g' = with_cable g ~a ~b in
          match Runs.run_named algorithm g' with
          | Error _ -> None
          | Ok ft' ->
            let after = ebb_of ft' ~patterns ~seed in
            Some
              {
                from_switch = (Graph.node g a).Node.name;
                to_switch = (Graph.node g b).Node.name;
                ebb_before = base;
                ebb_after = after;
                gain = (if base > 0.0 then (after -. base) /. base else 0.0);
              })
        (take candidates all)
    in
    Ok (List.sort (fun s1 s2 -> compare s2.gain s1.gain) evaluated)
