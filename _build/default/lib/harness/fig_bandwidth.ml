let header = "fabric" :: Runs.paper_algorithms

let sweep_note patterns = Printf.sprintf "%d random bisection patterns per cell; 1.0 = full wire speed" patterns

let fig4 ?(scale = 4) ?(patterns = 50) ?(seed = 1) () =
  let systems = Clusters.all ~scale () in
  let rows =
    List.map
      (fun (s : Clusters.system) ->
        Report.Str (Printf.sprintf "%s(%d)" s.name (Graph.num_terminals s.graph))
        :: List.map (fun alg -> Runs.ebb_cell ~patterns ~seed alg s.graph) Runs.paper_algorithms)
      systems
  in
  {
    Report.title = Printf.sprintf "Fig. 4: effective bisection bandwidth, real systems (scale 1/%d)" scale;
    columns = header;
    rows;
    notes =
      [
        sweep_note patterns;
        "systems are stand-ins rebuilt from published descriptions (DESIGN.md:substitutions)";
      ];
  }

let sweep title graph_of ?(max_endpoints = 1024) ?(patterns = 50) ?(seed = 1) () =
  let rows =
    List.map
      (fun (r : Tableone.row) ->
        let g = graph_of r in
        Report.Int r.Tableone.endpoints
        :: List.map (fun alg -> Runs.ebb_cell ~patterns ~seed alg g) Runs.paper_algorithms)
      (Tableone.rows_up_to max_endpoints)
  in
  { Report.title; columns = "#endpoints" :: Runs.paper_algorithms; rows; notes = [ sweep_note patterns ] }

let fig5 ?max_endpoints ?patterns ?seed () =
  sweep "Fig. 5: effective bisection bandwidth, XGFT" Tableone.xgft_graph ?max_endpoints ?patterns ?seed ()

let fig6 ?max_endpoints ?patterns ?seed () =
  sweep "Fig. 6: effective bisection bandwidth, Kautz" Tableone.kautz_graph ?max_endpoints ?patterns ?seed ()
