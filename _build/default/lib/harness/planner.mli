(** Capacity planning: where would one more cable help most? Evaluates
    candidate switch-to-switch cables by re-routing the upgraded fabric
    and re-measuring the workload — the inverse of the fault-tolerance
    sweep, and a natural consumer of the whole pipeline (generators,
    routing, congestion model).

    Candidates are derived from the workload's hottest channels (a cable
    parallel to an overloaded one, or a shortcut between the endpoints of
    the hottest two-hop funnel), plus a few random controls. *)

type suggestion = {
  from_switch : string;
  to_switch : string;
  ebb_before : float;
  ebb_after : float;
  gain : float;  (** relative eBB improvement *)
}

(** [suggest ?candidates ?patterns ?seed ~algorithm g] returns suggestions
    sorted by gain (best first). [candidates] caps how many upgrades are
    tried (default 8); each evaluation is a full re-route. Fails if the
    base fabric cannot be routed by [algorithm]. *)
val suggest :
  ?candidates:int ->
  ?patterns:int ->
  ?seed:int ->
  algorithm:string ->
  Graph.t ->
  (suggestion list, string) result
