let log_src = Logs.Src.create "deadlock.layers" ~doc:"offline virtual-layer assignment (Algorithm 2)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type outcome = {
  layer_of_path : int array;
  layers_used : int;
  cycles_broken : int;
}

let assign g ~paths ~max_layers ~heuristic =
  if max_layers < 1 then invalid_arg "Layers.assign: max_layers < 1";
  let n = Array.length paths in
  let layer_of_path = Array.make n 0 in
  let cycles_broken = ref 0 in
  let cdgs = Array.make max_layers None in
  let cdg i =
    match cdgs.(i) with
    | Some c -> c
    | None ->
      let c = Cdg.create g in
      cdgs.(i) <- Some c;
      c
  in
  let first = cdg 0 in
  Array.iteri (fun i p -> Cdg.add_path first ~pair:i p) paths;
  let error = ref None in
  let vl = ref 0 in
  while !error = None && !vl < max_layers && cdgs.(!vl) <> None do
    let current = cdg !vl in
    let search = Cycle.create current in
    let sweeping = ref true in
    while !sweeping && !error = None do
      match Cycle.find_cycle search with
      | None -> sweeping := false
      | Some cycle ->
        incr cycles_broken;
        if !vl + 1 >= max_layers then
          error :=
            Some
              (Printf.sprintf "cycle remains in layer %d and no layer is left (max %d)" !vl max_layers)
        else begin
          let c1, c2 = Heuristic.choose heuristic current cycle in
          let movers =
            List.filter (fun pr -> layer_of_path.(pr) = !vl) (Cdg.edge_pairs current ~c1 ~c2)
          in
          Log.debug (fun m ->
              m "layer %d: cycle of %d edges; evicting edge (%d,%d) with %d routes" !vl
                (Array.length cycle) c1 c2 (List.length movers));
          let next = cdg (!vl + 1) in
          List.iter
            (fun pr ->
              Cdg.remove_path current paths.(pr);
              Cdg.add_path next ~pair:pr paths.(pr);
              layer_of_path.(pr) <- !vl + 1)
            movers;
          Cycle.notify_removed search
        end
    done;
    incr vl
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
    let layers_used = 1 + Array.fold_left max 0 layer_of_path in
    Log.info (fun m ->
        m "assigned %d routes over %d layer(s), breaking %d cycle(s)" n layers_used !cycles_broken);
    Ok { layer_of_path; layers_used; cycles_broken = !cycles_broken }

let balance outcome ~max_layers =
  let used = outcome.layers_used in
  if max_layers <= used then (Array.copy outcome.layer_of_path, used)
  else begin
    let n = Array.length outcome.layer_of_path in
    let counts = Array.make used 0 in
    Array.iter (fun l -> counts.(l) <- counts.(l) + 1) outcome.layer_of_path;
    (* Apportion the max_layers slots to the original layers proportionally
       to their route counts (largest remainder), at least one slot each. *)
    let total = float_of_int n in
    let slots = Array.make used 1 in
    let assigned = ref used in
    let quota = Array.init used (fun l -> float_of_int counts.(l) /. total *. float_of_int max_layers) in
    (* integer parts beyond the guaranteed 1 *)
    for l = 0 to used - 1 do
      let extra = max 0 (int_of_float quota.(l) - 1) in
      let extra = min extra (max_layers - !assigned) in
      slots.(l) <- slots.(l) + extra;
      assigned := !assigned + extra
    done;
    let order = Array.init used (fun l -> l) in
    Array.sort
      (fun a b ->
        compare (quota.(b) -. Float.of_int slots.(b)) (quota.(a) -. Float.of_int slots.(a)))
      order;
    let i = ref 0 in
    while !assigned < max_layers do
      let l = order.(!i mod used) in
      slots.(l) <- slots.(l) + 1;
      incr assigned;
      incr i
    done;
    (* New layer ids: original layer l owns a contiguous block of slots;
       its routes round-robin over the block. Any subset of an acyclic
       layer is acyclic, and blocks never mix layers. *)
    let base = Array.make used 0 in
    for l = 1 to used - 1 do
      base.(l) <- base.(l - 1) + slots.(l - 1)
    done;
    let seen = Array.make used 0 in
    let fresh =
      Array.map
        (fun l ->
          let slot = seen.(l) mod slots.(l) in
          seen.(l) <- seen.(l) + 1;
          base.(l) + slot)
        outcome.layer_of_path
    in
    (fresh, max_layers)
  end
