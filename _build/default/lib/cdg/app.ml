type path = int array

type generator = {
  num_nodes : int;
  paths : path array;
}

let edges_of_selection gen indices =
  let edges = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let p = gen.paths.(i) in
      for j = 0 to Array.length p - 2 do
        Hashtbl.replace edges (p.(j), p.(j + 1)) ()
      done)
    indices;
  edges

let acyclic_edges num_nodes edges =
  let adj = Array.make num_nodes [] in
  let indeg = Array.make num_nodes 0 in
  Hashtbl.iter
    (fun (a, b) () ->
      adj.(a) <- b :: adj.(a);
      indeg.(b) <- indeg.(b) + 1)
    edges;
  let queue = Queue.create () in
  for v = 0 to num_nodes - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    incr seen;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      adj.(v)
  done;
  !seen = num_nodes

let induces_acyclic gen indices = acyclic_edges gen.num_nodes (edges_of_selection gen indices)

let is_cover gen ~assignment ~k =
  Array.length assignment = Array.length gen.paths
  && k >= 1
  && Array.for_all (fun c -> c >= 0 && c < k) assignment
  && (let nonempty = Array.make k false in
      Array.iter (fun c -> nonempty.(c) <- true) assignment;
      Array.for_all Fun.id nonempty)
  &&
  let classes = Array.make k [] in
  Array.iteri (fun i c -> classes.(c) <- i :: classes.(c)) assignment;
  Array.for_all (fun members -> induces_acyclic gen members) classes

(* Backtracking with first-fit symmetry breaking: path i may only open
   class (max used so far) + 1. Acyclicity is re-checked on the touched
   class only. *)
let find_cover gen ~k =
  let n = Array.length gen.paths in
  if k > n || k < 1 then None
  else begin
    let assignment = Array.make n (-1) in
    let classes = Array.make k [] in
    let rec place i used =
      if i = n then if used = k then Some (Array.copy assignment) else None
      else begin
        let limit = min (used + 1) k in
        (* Prune: remaining paths must be able to open the missing
           classes. *)
        if k - used > n - i then None
        else begin
          let rec try_class c =
            if c >= limit then None
            else begin
              classes.(c) <- i :: classes.(c);
              let ok = induces_acyclic gen classes.(c) in
              if ok then begin
                assignment.(i) <- c;
                match place (i + 1) (max used (c + 1)) with
                | Some _ as witness -> witness
                | None ->
                  assignment.(i) <- -1;
                  classes.(c) <- List.tl classes.(c);
                  try_class (c + 1)
              end
              else begin
                classes.(c) <- List.tl classes.(c);
                try_class (c + 1)
              end
            end
          in
          try_class 0
        end
      end
    in
    place 0 0
  end

let min_cover_exact ?max_k gen =
  let n = Array.length gen.paths in
  let max_k = Option.value ~default:n max_k in
  let rec go k =
    if k > max_k || k > n then None
    else
      match find_cover gen ~k with
      | Some _ -> Some k
      | None -> go (k + 1)
  in
  if n = 0 then Some 0 else go 1

let of_coloring ~num_vertices ~edges =
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg "App.of_coloring: self loop";
      if a < 0 || b < 0 || a >= num_vertices || b >= num_vertices then
        invalid_arg "App.of_coloring: vertex out of range")
    edges;
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (a, b) ->
      let key = (min a b, max a b) in
      if Hashtbl.mem seen key then invalid_arg "App.of_coloring: duplicate edge";
      Hashtbl.replace seen key ())
    edges;
  (* D-nodes: <v> for each vertex, then (x, y) and (y, x) per edge. *)
  let pair_id = Hashtbl.create (2 * List.length edges) in
  let next = ref num_vertices in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace pair_id (a, b) !next;
      Hashtbl.replace pair_id (b, a) (!next + 1);
      next := !next + 2)
    edges;
  let adj = Array.make num_vertices [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edges;
  let paths =
    Array.init num_vertices (fun v ->
        let neighbours = List.sort compare adj.(v) in
        let tail =
          List.concat_map (fun w -> [ Hashtbl.find pair_id (v, w); Hashtbl.find pair_id (w, v) ]) neighbours
        in
        Array.of_list (v :: tail))
  in
  { num_nodes = !next; paths }

let chromatic_number_exact ~num_vertices ~edges ~max_k =
  let adj = Array.make num_vertices [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edges;
  let color = Array.make num_vertices (-1) in
  let rec colorable v k =
    if v = num_vertices then true
    else begin
      let limit =
        (* symmetry breaking: vertex v uses at most one fresh color *)
        let used = ref 0 in
        for u = 0 to v - 1 do
          if color.(u) >= !used then used := color.(u) + 1
        done;
        min k (!used + 1)
      in
      let rec try_color c =
        if c >= limit then false
        else if List.exists (fun w -> color.(w) = c) adj.(v) then try_color (c + 1)
        else begin
          color.(v) <- c;
          if colorable (v + 1) k then true
          else begin
            color.(v) <- -1;
            try_color (c + 1)
          end
        end
      in
      try_color 0
    end
  in
  let rec go k = if k > max_k then None else if colorable 0 k then Some k else go (k + 1) in
  if num_vertices = 0 then Some 0 else go 1

let fig3_example =
  (* a=0 b=1 c=2 d=3 *)
  { num_nodes = 4; paths = [| [| 1; 2 |]; [| 0; 1; 2 |]; [| 2; 3; 0; 1 |] |] }

let coloring_of_cover ~num_vertices ~assignment =
  if Array.length assignment <> num_vertices then
    invalid_arg "App.coloring_of_cover: one path per vertex expected";
  Array.copy assignment

let is_proper_coloring ~edges color =
  List.for_all (fun (a, b) -> color.(a) <> color.(b)) edges
