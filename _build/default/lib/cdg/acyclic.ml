let is_acyclic cdg =
  let g = Cdg.graph cdg in
  let m = Graph.num_channels g in
  let indeg = Array.make m 0 in
  Cdg.iter_edges cdg (fun _ c2 _ -> indeg.(c2) <- indeg.(c2) + 1);
  let queue = Queue.create () in
  for c = 0 to m - 1 do
    if indeg.(c) = 0 then Queue.add c queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let c = Queue.take queue in
    incr seen;
    Array.iter
      (fun c2 ->
        indeg.(c2) <- indeg.(c2) - 1;
        if indeg.(c2) = 0 then Queue.add c2 queue)
      (Cdg.successors cdg c)
  done;
  !seen = m

let layers_acyclic ?(domains = 1) g ~paths ~layer_of_path ~num_layers =
  if Array.length paths <> Array.length layer_of_path then
    invalid_arg "Acyclic.layers_acyclic: length mismatch";
  let check vl =
    let cdg = Cdg.create g in
    Array.iteri (fun i p -> if layer_of_path.(i) = vl then Cdg.add_path cdg ~pair:i p) paths;
    is_acyclic cdg
  in
  Parallel.for_all ~domains:(min domains num_layers) check (Array.init num_layers Fun.id)
