lib/cdg/app.mli:
