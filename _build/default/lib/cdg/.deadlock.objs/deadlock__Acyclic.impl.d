lib/cdg/acyclic.ml: Array Cdg Fun Graph Parallel Queue
