lib/cdg/layers.mli: Graph Heuristic Path
