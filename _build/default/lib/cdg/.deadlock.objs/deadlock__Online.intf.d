lib/cdg/online.mli: Graph Path
