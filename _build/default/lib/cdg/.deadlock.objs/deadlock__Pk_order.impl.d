lib/cdg/pk_order.ml: Array Cdg Channel Fun Graph Hashtbl List
