lib/cdg/heuristic.ml: Array Cdg Printf String
