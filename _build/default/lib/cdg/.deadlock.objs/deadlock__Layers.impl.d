lib/cdg/layers.ml: Array Cdg Cycle Float Heuristic List Logs Printf
