lib/cdg/heuristic.mli: Cdg
