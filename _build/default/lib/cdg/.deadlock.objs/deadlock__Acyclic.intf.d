lib/cdg/acyclic.mli: Cdg Graph Path
