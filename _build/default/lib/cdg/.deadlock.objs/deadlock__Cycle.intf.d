lib/cdg/cycle.mli: Cdg
