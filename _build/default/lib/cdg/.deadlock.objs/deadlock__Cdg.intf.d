lib/cdg/cdg.mli: Graph Path
