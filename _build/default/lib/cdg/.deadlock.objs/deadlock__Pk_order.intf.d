lib/cdg/pk_order.mli: Cdg
