lib/cdg/online.ml: Array Cdg Graph List Logs Pk_order Printf
