lib/cdg/cycle.ml: Array Cdg Graph List
