lib/cdg/app.ml: Array Fun Hashtbl List Option Queue
