lib/cdg/cdg.ml: Array Graph Hashtbl
