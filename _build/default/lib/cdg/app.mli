(** The acyclic path partitioning (APP) problem — the paper's Section
    III-A formalisation of virtual-layer assignment — together with the
    machinery of its NP-completeness proof (Theorem 1): an exact solver
    for small instances and the polynomial reduction from graph
    k-colorability, so both directions of the proof are executable and
    testable.

    Here a "path" is a node sequence in an abstract dependency graph [D];
    a set of path indices {e induces} the subgraph of all their nodes and
    consecutive edges. A k-cover partitions the generator into k non-empty
    classes, each inducing an acyclic subgraph. *)

type path = int array
(** Sequence of D-nodes; consecutive entries are directed edges. *)

type generator = {
  num_nodes : int;  (** D-nodes are [0 .. num_nodes-1] *)
  paths : path array;
}

(** [induces_acyclic gen indices] checks that the union of the selected
    paths' edges is acyclic. *)
val induces_acyclic : generator -> int list -> bool

(** [is_cover gen ~assignment ~k] checks the paper's cover conditions:
    every class in [0, k) non-empty, every path assigned, every class
    acyclic. [assignment.(i)] is path [i]'s class. *)
val is_cover : generator -> assignment:int array -> k:int -> bool

(** [min_cover_exact ?max_k gen] is the smallest [k] admitting a k-cover,
    by backtracking with first-fit symmetry breaking; [None] if no cover
    with [k <= max_k] (default: number of paths) exists. Exponential —
    test-sized instances only. *)
val min_cover_exact : ?max_k:int -> generator -> int option

(** [find_cover gen ~k] produces a witness assignment, if one exists. *)
val find_cover : generator -> k:int -> int array option

(** {1 The reduction from graph k-colorability}

    For each vertex [v] with neighbours [w_1 < ... < w_m], the construction
    emits the path [<v> -> (v,w_1) -> (w_1,v) -> ... -> (v,w_m) -> (w_m,v)]
    over D-nodes [<v>] and ordered-pair nodes [(x,y)] per edge. Two paths
    [p_v], [p_w] induce a 2-cycle iff [(v,w)] is an edge, and are node-
    disjoint otherwise; hence [G] is k-colorable iff the generator has a
    k-cover. *)

(** [of_coloring ~num_vertices ~edges] builds the generator of the
    reduction. Edges are undirected; duplicates and self-loops are
    rejected. *)
val of_coloring : num_vertices:int -> edges:(int * int) list -> generator

(** Exact chromatic-number computation (backtracking) for validating the
    reduction on small graphs. [None] if it exceeds [max_k]. *)
val chromatic_number_exact : num_vertices:int -> edges:(int * int) list -> max_k:int -> int option

(** The proof's "<=" direction, executable: a k-cover of a reduction
    instance induces a proper k-coloring — vertex [v]'s color is the class
    of its path [p_v]. Returns the color array.
    @raise Invalid_argument if [assignment] does not index the
    generator's paths (one per vertex). Validity of the resulting coloring
    follows from Theorem 1; [is_proper_coloring] checks it directly. *)
val coloring_of_cover : num_vertices:int -> assignment:int array -> int array

(** [is_proper_coloring ~edges color] checks no edge is monochromatic. *)
val is_proper_coloring : edges:(int * int) list -> int array -> bool

(** The paper's Fig. 3 instance: D-nodes a..d (0..3), paths
    [p1 = bc], [p2 = abc], [p3 = cdab]; it has a 2-cover but no 1-cover. *)
val fig3_example : generator
