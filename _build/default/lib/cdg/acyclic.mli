(** Acyclicity verification for channel dependency graphs, by Kahn's
    topological sort — deliberately independent of the resumable DFS in
    {!Cycle} so each can validate the other in tests. *)

(** [is_acyclic cdg] is [true] iff the CDG currently has no directed
    cycle. *)
val is_acyclic : Cdg.t -> bool

(** [layers_acyclic ?domains g ~paths ~layer_of_path ~num_layers] rebuilds
    one CDG per layer from scratch and checks each — the end-to-end
    deadlock-freedom criterion (paper Theorem 1 direction used:
    acyclic => deadlock-free). Layers are independent; [domains > 1]
    checks them on that many OCaml domains. *)
val layers_acyclic :
  ?domains:int -> Graph.t -> paths:Path.t array -> layer_of_path:int array -> num_layers:int -> bool
