type t =
  | Weakest
  | Heaviest
  | First_edge

let all = [ Weakest; Heaviest; First_edge ]

let to_string = function
  | Weakest -> "weakest"
  | Heaviest -> "heaviest"
  | First_edge -> "first-edge"

let of_string s =
  match String.lowercase_ascii s with
  | "weakest" -> Ok Weakest
  | "heaviest" -> Ok Heaviest
  | "first-edge" | "first" -> Ok First_edge
  | other -> Error (Printf.sprintf "unknown heuristic %S (want weakest|heaviest|first-edge)" other)

let choose h cdg cycle =
  if Array.length cycle = 0 then invalid_arg "Heuristic.choose: empty cycle";
  match h with
  | First_edge -> cycle.(0)
  | Weakest | Heaviest ->
    let better a b = if h = Weakest then a < b else a > b in
    let best = ref cycle.(0) in
    let best_count = ref (Cdg.edge_count cdg ~c1:(fst cycle.(0)) ~c2:(snd cycle.(0))) in
    Array.iter
      (fun (c1, c2) ->
        let count = Cdg.edge_count cdg ~c1 ~c2 in
        if better count !best_count then begin
          best := (c1, c2);
          best_count := count
        end)
      cycle;
    !best
