(** Resumable depth-first cycle search over a {!Cdg.t} — the engine of the
    paper's offline Algorithm 2. After a cycle is reported and the caller
    breaks it by relocating routes (removing edges), the search continues
    from where it stopped instead of restarting: edges are only ever
    removed while a layer is processed, removal cannot create cycles, so
    finished ("black") regions stay certified and only the invalidated
    part of the DFS stack is re-explored. This is what makes offline
    DFSSSP need one amortized traversal per layer. *)

type t

(** Start a search over [cdg]. The caller must not add paths to [cdg]
    while the search lives; removing paths is allowed but must be followed
    by {!notify_removed} before the next {!find_cycle}. *)
val create : Cdg.t -> t

(** [find_cycle t] returns the next directed cycle, as the array of CDG
    edges [(c_i, c_j)] forming it (each live at return time), or [None]
    when the remaining graph is acyclic. Calling it again without removing
    an edge of the reported cycle will return the same cycle. *)
val find_cycle : t -> (int * int) array option

(** Tell the search that the caller removed edges: the DFS stack is
    truncated at the first stack edge that died, and the cut-off suffix is
    reverted to unvisited. *)
val notify_removed : t -> unit
