(** Cycle-breaking heuristics (paper Section IV). The APP problem is
    NP-complete, so DFSSSP picks the edge to evict from a cycle
    heuristically:

    - [Weakest]: the edge induced by the fewest routes — moves the least
      work to the next layer; the paper's winner (3–5 layers on its random
      topologies).
    - [Heaviest]: the edge induced by the most routes — hopes to break
      undiscovered cycles alongside; the paper's worst (4–16 layers).
    - [First_edge]: the first edge of the discovered cycle —
      pseudo-random baseline (4–8 layers). *)

type t =
  | Weakest
  | Heaviest
  | First_edge

val all : t list

val to_string : t -> string

val of_string : string -> (t, string) result

(** [choose h cdg cycle] picks the edge of [cycle] to break. Ties go to
    the earliest edge in cycle order.
    @raise Invalid_argument on an empty cycle. *)
val choose : t -> Cdg.t -> (int * int) array -> int * int
