(** Channel dependency graphs (Dally & Seitz): nodes are the fabric's
    directed channels; a directed edge (c1, c2) exists iff some route
    traverses c1 immediately followed by c2. A routing is deadlock-free if
    its CDG is acyclic (the sufficient condition the paper builds on).

    Each edge carries the multiset of routes ("pairs") inducing it — the
    bookkeeping the paper's offline algorithm needs to relocate all routes
    of a broken edge to the next virtual layer. Pair identifiers are
    caller-chosen dense integers.

    Removal strategy: [remove_path] keeps exact per-edge counts and drops
    edges whose count reaches zero, but does {e not} eagerly prune the
    inducing-pair lists; callers that relocate pairs must filter
    {!edge_pairs} through their own pair-to-layer map (see {!Layers}). *)

type t

val create : Graph.t -> t

val graph : t -> Graph.t

(** [add_path t ~pair p] inserts every dependency of path [p], crediting
    [pair]. A pair must not be added to the same CDG twice. Paths shorter
    than two channels induce nothing but still count as carried paths. *)
val add_path : t -> pair:int -> Path.t -> unit

(** [remove_path t p] decrements every dependency of [p]. The caller must
    only remove paths previously added.
    @raise Invalid_argument if an edge of [p] is not present. *)
val remove_path : t -> Path.t -> unit

(** [live t ~c1 ~c2] is [true] iff the edge currently has a positive
    count. *)
val live : t -> c1:int -> c2:int -> bool

(** Current number of inducing routes of an edge (0 if absent). *)
val edge_count : t -> c1:int -> c2:int -> int

(** All pairs ever credited to a currently-live edge — may include pairs
    whose paths were since removed; filter against external state.
    [[]] if the edge is dead. *)
val edge_pairs : t -> c1:int -> c2:int -> int list

(** Snapshot of the live successor channels of [c] (fresh array). *)
val successors : t -> int -> int array

(** Number of live edges. *)
val num_edges : t -> int

(** Number of paths currently carried (added minus removed). *)
val num_paths : t -> int

val is_empty : t -> bool

(** [iter_edges t f] calls [f c1 c2 count] for every live edge. *)
val iter_edges : t -> (int -> int -> int -> unit) -> unit
