(** Incremental cycle detection by dynamic topological ordering
    (Pearce & Kelly, "A Dynamic Topological Sort Algorithm for Directed
    Acyclic Graphs", JEA 2007) — an asymptotically better engine for the
    online layer assignment: instead of a fresh O(|C|+|E|) reachability
    probe per inserted dependency, only the affected region between the
    edge's endpoints in the maintained topological order is visited.

    The structure shadows a {!Cdg.t}: the caller adds dependencies to the
    CDG first and then registers them here; an insertion that would close
    a cycle is reported {e before} the order is disturbed. Edge deletions
    never invalidate a topological order, so the caller may remove paths
    from the CDG (rollback) without telling this structure. *)

type t

(** [create cdg] builds an order for [cdg]'s current nodes. The CDG must
    be acyclic and is typically empty. DFS probes traverse only edges that
    are live in [cdg] {e and} were accepted by {!insert} — a freshly added
    path's not-yet-registered dependencies are invisible until their own
    insertion, where any cycle they complete is caught. *)
val create : Cdg.t -> t

(** [insert t ~c1 ~c2] registers the dependency (c1, c2).
    Returns [false] — and leaves the order untouched — if the edge would
    create a cycle (the caller must then remove it from the CDG);
    [true] otherwise, with the order updated. Self edges are rejected. *)
val insert : t -> c1:int -> c2:int -> bool

(** Current position of a channel in the topological order (test hook). *)
val position : t -> int -> int

(** Verify that the maintained order is a valid topological order of the
    CDG's live edges (test hook, O(|C|+|E|)). *)
val consistent : t -> bool
