type t = {
  pairs : int;
  min_hops : int;
  max_hops : int;
  mean_hops : float;
  diameter_hops : int;
  max_load : int;
  mean_load : float;
  load_cv : float;
}

let measure ft =
  let g = Ftable.graph ft in
  let load = Array.make (Netgraph.Graph.num_channels g) 0 in
  let pairs = ref 0 and total_hops = ref 0 in
  let min_hops = ref max_int and max_hops = ref 0 in
  Ftable.iter_pairs ft (fun ~src:_ ~dst:_ p ->
      incr pairs;
      let hops = Array.length p in
      total_hops := !total_hops + hops;
      if hops < !min_hops then min_hops := hops;
      if hops > !max_hops then max_hops := hops;
      Array.iter (fun c -> load.(c) <- load.(c) + 1) p);
  (* diameter over terminals: the min-hop bound of the worst pair *)
  let diameter = ref 0 in
  Array.iter
    (fun t ->
      let dist = Netgraph.Graph.bfs_dist g t in
      Array.iter
        (fun t' -> if dist.(t') < max_int && dist.(t') > !diameter then diameter := dist.(t'))
        (Netgraph.Graph.terminals g))
    (Netgraph.Graph.terminals g);
  (* load stats over switch-to-switch channels only *)
  let switch_loads = ref [] in
  Array.iter
    (fun (c : Netgraph.Channel.t) ->
      if Netgraph.Graph.is_switch g c.src && Netgraph.Graph.is_switch g c.dst then
        switch_loads := float_of_int load.(c.id) :: !switch_loads)
    (Netgraph.Graph.channels g);
  let loads = Array.of_list !switch_loads in
  let mean_load, load_cv =
    if Array.length loads = 0 then (0.0, 0.0)
    else begin
      let s = Metrics.summarize loads in
      (s.Metrics.mean, if s.Metrics.mean > 0.0 then s.Metrics.stddev /. s.Metrics.mean else 0.0)
    end
  in
  {
    pairs = !pairs;
    min_hops = (if !pairs = 0 then 0 else !min_hops);
    max_hops = !max_hops;
    mean_hops = (if !pairs = 0 then 0.0 else float_of_int !total_hops /. float_of_int !pairs);
    diameter_hops = !diameter;
    max_load = Array.fold_left max 0 load;
    mean_load;
    load_cv;
  }

let pp ppf q =
  Format.fprintf ppf "pairs=%d hops[min/mean/max]=%d/%.2f/%d diameter=%d load[max/mean/cv]=%d/%.1f/%.3f"
    q.pairs q.min_hops q.mean_hops q.max_hops q.diameter_hops q.max_load q.mean_load q.load_cv
