type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  median : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Metrics.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let percentile p xs =
  if Array.length xs = 0 then invalid_arg "Metrics.percentile: empty sample";
  if p < 0.0 || p > 1.0 then invalid_arg "Metrics.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Metrics.summarize: empty sample";
  let mu = mean xs in
  let var = Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs /. float_of_int n in
  {
    n;
    min = Array.fold_left min xs.(0) xs;
    max = Array.fold_left max xs.(0) xs;
    mean = mu;
    stddev = sqrt var;
    median = percentile 0.5 xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d min=%.4f median=%.4f mean=%.4f max=%.4f sd=%.4f" s.n s.min s.median s.mean s.max
    s.stddev
