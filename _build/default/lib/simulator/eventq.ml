type 'a entry = {
  at : float;
  seq : int;
  event : 'a;
}

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable seq : int;
}

let create () = { heap = [||]; size = 0; seq = 0 }

let is_empty t = t.size = 0

let size t = t.size

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let fresh = Array.make (max 16 (2 * cap)) t.heap.(0) in
    Array.blit t.heap 0 fresh 0 t.size;
    t.heap <- fresh
  end

let schedule t ~at event =
  if Float.is_nan at || at < 0.0 then invalid_arg "Eventq.schedule: bad time";
  let entry = { at; seq = t.seq; event } in
  t.seq <- t.seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let next t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.at, top.event)
  end
