(** Collective-operation schedules: an MPI collective is not one flat
    traffic blast but a sequence of rounds, each a (near-)permutation,
    synchronized by the algorithm's data dependencies. Modelling the
    rounds matters for routing comparisons — every round is a permutation
    whose bottleneck the routing's balance determines, and round times
    add up (the paper's Fig. 13 all-to-all microbenchmark is exactly
    such a schedule on the wire).

    Time model per round: [bytes * max-bottleneck-load / bandwidth], the
    same static model as {!Congestion.completion_time}; rounds are
    barriers. *)

type schedule = {
  name : string;
  rounds : Patterns.flow array list;  (** each round's (src, dst) pairs *)
  bytes_per_round : int -> float -> float;
      (** [bytes_per_round round message_bytes] — how much each pair ships
          in the given round, as a function of the caller's nominal
          per-rank message size (algorithms differ: pairwise all-to-all
          ships [m] per round, recursive doubling ships the full vector
          every round, ring allreduce ships [m/n] chunks). *)
}

(** Pairwise-exchange all-to-all (the classic large-message MPI_Alltoall):
    round k sends rank i's block to rank (i XOR k) for power-of-two rank
    counts, else to rank (i + k) mod n; n-1 rounds, [m] bytes per pair
    per round. *)
val all_to_all_pairwise : int array -> schedule

(** Recursive-doubling allreduce: log2 n rounds of butterfly exchanges,
    full vector each round. Requires a power-of-two rank count. *)
val allreduce_recursive_doubling : int array -> (schedule, string) result

(** Ring allreduce (reduce-scatter + allgather): 2(n-1) rounds of
    neighbour shifts, [m/n] bytes per round. *)
val allreduce_ring : int array -> schedule

(** [completion_time ft schedule ~message_bytes ~bandwidth] sums the
    static per-round times over the schedule. *)
val completion_time : Ftable.t -> schedule -> message_bytes:float -> bandwidth:float -> float
