type schedule = {
  name : string;
  rounds : Patterns.flow array list;
  bytes_per_round : int -> float -> float;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let all_to_all_pairwise ranks =
  let n = Array.length ranks in
  let round k =
    if is_power_of_two n then
      Array.init n (fun i -> (ranks.(i), ranks.(i lxor k)))
      |> Array.to_list
      |> List.filter (fun (a, b) -> a <> b)
      |> Array.of_list
    else Patterns.ring_shift ~by:k ranks
  in
  let rounds = List.init (max 0 (n - 1)) (fun k -> round (k + 1)) in
  { name = "all-to-all (pairwise exchange)"; rounds; bytes_per_round = (fun _ m -> m) }

let allreduce_recursive_doubling ranks =
  let n = Array.length ranks in
  if not (is_power_of_two n) then
    Error (Printf.sprintf "allreduce_recursive_doubling: %d ranks not a power of two" n)
  else begin
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
    let rounds =
      List.init (log2 0 n) (fun r ->
          let d = 1 lsl r in
          Array.init n (fun i -> (ranks.(i), ranks.(i lxor d))))
    in
    Ok { name = "allreduce (recursive doubling)"; rounds; bytes_per_round = (fun _ m -> m) }
  end

let allreduce_ring ranks =
  let n = Array.length ranks in
  let shift = Patterns.ring_shift ~by:1 ranks in
  let rounds = List.init (max 0 (2 * (n - 1))) (fun _ -> shift) in
  {
    name = "allreduce (ring)";
    rounds;
    bytes_per_round = (fun _ m -> if n = 0 then 0.0 else m /. float_of_int n);
  }

let completion_time ft schedule ~message_bytes ~bandwidth =
  if message_bytes < 0.0 || bandwidth <= 0.0 then invalid_arg "Collective.completion_time";
  List.fold_left
    (fun (acc, round) flows ->
      let t =
        if Array.length flows = 0 then 0.0
        else begin
          let r = Congestion.evaluate ft ~flows in
          schedule.bytes_per_round round message_bytes *. r.Congestion.completion /. bandwidth
        end
      in
      (acc +. t, round + 1))
    (0.0, 0) schedule.rounds
  |> fst
