type flow = int * int

let random_bisection rng ranks =
  let n = Array.length ranks in
  if n < 2 then invalid_arg "Patterns.random_bisection: need at least 2 ranks";
  let shuffled = Array.copy ranks in
  Netgraph.Rng.shuffle rng shuffled;
  let half = n / 2 in
  Array.init half (fun i -> (shuffled.(i), shuffled.(half + i)))

let all_to_all ranks =
  let n = Array.length ranks in
  let out = Array.make (n * (n - 1)) (0, 0) in
  let k = ref 0 in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if a <> b then begin
            out.(!k) <- (a, b);
            incr k
          end)
        ranks)
    ranks;
  out

let ring_shift ~by ranks =
  let n = Array.length ranks in
  if n = 0 then [||]
  else begin
    let by = ((by mod n) + n) mod n in
    if by = 0 then [||] else Array.init n (fun i -> (ranks.(i), ranks.((i + by) mod n)))
  end

let uniform_random rng ~flows ranks =
  let n = Array.length ranks in
  if n < 2 then invalid_arg "Patterns.uniform_random: need at least 2 ranks";
  Array.init flows (fun _ ->
      let a = Netgraph.Rng.int rng n in
      let rec other () =
        let b = Netgraph.Rng.int rng n in
        if b = a then other () else b
      in
      (ranks.(a), ranks.(other ())))

(* Deduplicating flow collector: NAS skeletons touch each (src, dst) once
   even when several exchanges share partners. *)
let collect_flows add_all =
  let seen = Hashtbl.create 256 in
  let flows = ref [] in
  let add a b =
    if a <> b && not (Hashtbl.mem seen (a, b)) then begin
      Hashtbl.replace seen (a, b) ();
      flows := (a, b) :: !flows
    end
  in
  add_all add;
  Array.of_list (List.rev !flows)

let exact_sqrt n =
  let r = int_of_float (sqrt (float_of_int n)) in
  let candidates = [ r - 1; r; r + 1 ] in
  List.find_opt (fun c -> c > 0 && c * c = n) candidates

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let permutation name f ranks =
  let n = Array.length ranks in
  let out = ref [] in
  let rec go i =
    if i >= n then Ok (Array.of_list (List.rev !out))
    else begin
      let j = f i in
      if j < 0 || j >= n then Error (Printf.sprintf "%s: image out of range" name)
      else begin
        if i <> j then out := (ranks.(i), ranks.(j)) :: !out;
        go (i + 1)
      end
    end
  in
  go 0

let bit_complement ranks =
  let n = Array.length ranks in
  if not (is_power_of_two n) then Error (Printf.sprintf "bit_complement: %d ranks not a power of two" n)
  else permutation "bit_complement" (fun i -> lnot i land (n - 1)) ranks

let bit_reverse ranks =
  let n = Array.length ranks in
  if not (is_power_of_two n) then Error (Printf.sprintf "bit_reverse: %d ranks not a power of two" n)
  else begin
    let bits =
      let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
      go 0 n
    in
    let rev i =
      let r = ref 0 in
      for b = 0 to bits - 1 do
        if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
      done;
      !r
    in
    permutation "bit_reverse" rev ranks
  end

let transpose ranks =
  let n = Array.length ranks in
  match exact_sqrt n with
  | None -> Error (Printf.sprintf "transpose: %d ranks not a perfect square" n)
  | Some side -> permutation "transpose" (fun i -> ((i mod side) * side) + (i / side)) ranks

let tornado ranks =
  let n = Array.length ranks in
  if n < 3 then Error "tornado: need at least 3 ranks"
  else permutation "tornado" (fun i -> (i + (n / 2) - 1) mod n) ranks

let adversarial =
  [ ("bit-complement", bit_complement); ("bit-reverse", bit_reverse); ("transpose", transpose); ("tornado", tornado) ]


let square_torus_halo name ranks =
  let n = Array.length ranks in
  match exact_sqrt n with
  | None -> Error (Printf.sprintf "%s: rank count %d is not a perfect square" name n)
  | Some side ->
    Ok
      (collect_flows (fun add ->
           for r = 0 to side - 1 do
             for c = 0 to side - 1 do
               let me = ranks.((r * side) + c) in
               let at rr cc = ranks.((((rr + side) mod side) * side) + ((cc + side) mod side)) in
               add me (at (r - 1) c);
               add me (at (r + 1) c);
               add me (at r (c - 1));
               add me (at r (c + 1))
             done
           done))

let nas_bt ranks = square_torus_halo "nas_bt" ranks

let nas_sp ranks = square_torus_halo "nas_sp" ranks

let nas_ft ranks =
  if Array.length ranks < 2 then Error "nas_ft: need at least 2 ranks" else Ok (all_to_all ranks)

let nas_cg ranks =
  let n = Array.length ranks in
  if not (is_power_of_two n) then Error (Printf.sprintf "nas_cg: rank count %d is not a power of two" n)
  else begin
    (* CG lays ranks on a num_rows x num_cols grid (rows as square as
       possible); each rank exchanges with its row partners (reduction
       butterfly within the row) and its transpose partner. *)
    let log2 v =
      let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
      go 0 v
    in
    let l = log2 n in
    let rows = 1 lsl ((l + 1) / 2) in
    let cols = n / rows in
    Ok
      (collect_flows (fun add ->
           for r = 0 to rows - 1 do
             for c = 0 to cols - 1 do
               let me = ranks.((r * cols) + c) in
               (* butterfly partners within the row *)
               let d = ref 1 in
               while !d < cols do
                 add me ranks.((r * cols) + (c lxor !d));
                 d := !d * 2
               done;
               (* transpose partner (swap row/col blocks) *)
               if rows = cols then add me ranks.((c * cols) + r)
               else begin
                 let partner = (c * rows) + r in
                 add me ranks.(partner mod n)
               end
             done
           done))
  end

let nas_mg ranks =
  let n = Array.length ranks in
  if not (is_power_of_two n) then Error (Printf.sprintf "nas_mg: rank count %d is not a power of two" n)
  else begin
    (* 3-D decomposition as cubic as possible; halo partners at distances
       1, 2, 4, ... per dimension (coarser grids reach further). *)
    let dims = [| 1; 1; 1 |] in
    let rec split v d =
      if v > 1 then begin
        dims.(d) <- dims.(d) * 2;
        split (v / 2) ((d + 1) mod 3)
      end
    in
    split n 0;
    let dx = dims.(0) and dy = dims.(1) and dz = dims.(2) in
    let at x y z = ranks.((((x + dx) mod dx) * dy * dz) + (((y + dy) mod dy) * dz) + ((z + dz) mod dz)) in
    Ok
      (collect_flows (fun add ->
           for x = 0 to dx - 1 do
             for y = 0 to dy - 1 do
               for z = 0 to dz - 1 do
                 let me = at x y z in
                 let dist = ref 1 in
                 while !dist < max dx (max dy dz) do
                   if dx > 1 then begin
                     add me (at (x + !dist) y z);
                     add me (at (x - !dist) y z)
                   end;
                   if dy > 1 then begin
                     add me (at x (y + !dist) z);
                     add me (at x (y - !dist) z)
                   end;
                   if dz > 1 then begin
                     add me (at x y (z + !dist));
                     add me (at x y (z - !dist))
                   end;
                   dist := !dist * 2
                 done
               done
             done
           done))
  end

let nas_lu ranks =
  let n = Array.length ranks in
  if n < 2 then Error "nas_lu: need at least 2 ranks"
  else begin
    (* LU uses a 2-D grid as square as possible: the largest divisor of n
       not exceeding sqrt n gives the row count. *)
    let rows =
      let r = int_of_float (sqrt (float_of_int n)) in
      let rec down v = if v <= 1 then 1 else if n mod v = 0 then v else down (v - 1) in
      down (max 1 r)
    in
    let cols = n / rows in
    Ok
      (collect_flows (fun add ->
           for r = 0 to rows - 1 do
             for c = 0 to cols - 1 do
               let me = ranks.((r * cols) + c) in
               if r > 0 then add me ranks.(((r - 1) * cols) + c);
               if r < rows - 1 then add me ranks.(((r + 1) * cols) + c);
               if c > 0 then add me ranks.((r * cols) + (c - 1));
               if c < cols - 1 then add me ranks.((r * cols) + (c + 1))
             done
           done))
  end

let nas_kernels =
  [ ("BT", nas_bt); ("CG", nas_cg); ("FT", nas_ft); ("LU", nas_lu); ("MG", nas_mg); ("SP", nas_sp) ]
