(** Whole-routing quality metrics beyond a single traffic pattern: path
    length distribution and all-pairs channel load balance. The paper's
    two levers are exactly these — SSSP keeps lengths minimal (latency)
    while balancing the per-channel route counts (bandwidth); Up*/Down*
    gives up both near the root, LASH gives up balance. *)

type t = {
  pairs : int;
  min_hops : int;
  max_hops : int;
  mean_hops : float;
  diameter_hops : int;  (** BFS lower bound over terminal pairs *)
  max_load : int;  (** routes on the hottest channel (all-pairs traffic) *)
  mean_load : float;  (** over switch-to-switch channels with any load *)
  load_cv : float;  (** coefficient of variation of switch-channel loads —
                        0 = perfectly balanced *)
}

(** [measure ft] routes every ordered terminal pair once (uniform all-pairs
    traffic, the load SSSP explicitly balances) and summarizes. Terminal
    attachment channels are excluded from the load statistics: their load
    is topology-determined, not routing-determined.
    @raise Failure if some pair has no route. *)
val measure : Ftable.t -> t

val pp : Format.formatter -> t -> unit
