(** Time-ordered event queue for the discrete-event simulator: a binary
    min-heap on float timestamps with FIFO tie-breaking (events scheduled
    earlier pop first at equal times — determinism matters for
    reproducible simulations). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

(** [schedule t ~at event] enqueues [event] at time [at].
    @raise Invalid_argument on NaN or negative time. *)
val schedule : 'a t -> at:float -> 'a -> unit

(** Pop the earliest event as [(time, event)]. *)
val next : 'a t -> (float * 'a) option
