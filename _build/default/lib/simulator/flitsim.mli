(** Packet-level network simulator with per-virtual-lane buffers and
    credit-style flow control — the executable counterpart of the paper's
    deadlock argument (Section III, Fig. 2): with finite buffers, a
    routing whose channel dependency graph is cyclic can wedge the whole
    fabric, and the simulator reports exactly that state; a DFSSSP layer
    assignment on the same fabric always drains.

    Model (deliberately simple, deterministic, and conservative):
    - every directed channel owns [buffer_slots] packet slots per virtual
      lane (the receiving buffer of the link);
    - a cycle moves each buffer's head packet into its next channel's
      buffer if a slot was free at the start of the cycle and the target
      channel has not already accepted a packet this cycle (link
      bandwidth: one packet per channel per cycle);
    - sources inject under the same rules; terminals consume instantly;
    - arbitration is round-robin, rotated every cycle for fairness.

    Under start-of-cycle snapshots, blocking is monotone within a cycle,
    so one full sweep without any injection, movement, or consumption
    while packets remain in flight {e proves} a permanent deadlock. *)

type config = {
  buffer_slots : int;  (** per (channel, virtual lane); default 2 *)
  num_vls : int;  (** virtual lanes; default 8, the hardware ceiling *)
  max_cycles : int;  (** safety stop; default 1_000_000 *)
}

val default_config : config

type latency = {
  delivered : int;
  min_cycles : int;  (** fastest packet, injection to consumption *)
  max_cycles : int;
  mean_cycles : float;
}

type outcome =
  | Delivered of { cycles : int; delivered : int; latency : latency }
  | Deadlocked of { cycles : int; delivered : int; in_flight : int }
      (** zero progress with [in_flight] packets wedged in buffers *)
  | Out_of_cycles of { delivered : int; in_flight : int }

(** [run ?config ft ~flows] injects, for each [(src, dst, packets)] flow,
    [packets] packets routed and layered by [ft].
    @raise Invalid_argument if a flow's layer is >= [num_vls], a flow has
    [src = dst] or negative packet count.
    @raise Failure if a flow has no route. *)
val run : ?config:config -> Ftable.t -> flows:(int * int * int) array -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
