(** Discrete-event, message-level network simulator with credit-based
    virtual-lane flow control — the dynamic counterpart of the static
    {!Congestion} model. Messages are segmented into MTU packets;
    channels serialize packets at a configured bandwidth with per-hop
    propagation latency; a packet may only start crossing a channel when
    the downstream per-lane buffer has a free slot (credit), and the
    credit returns once the packet moves on. This captures the phenomena
    the static model cannot: head-of-line blocking, credit stalls, and
    transient congestion trees — the effects behind the gap between the
    paper's simulated (Fig. 4) and measured (Fig. 12) Deimos results.

    Like {!Flitsim}, a wedged fabric is detected exactly: the event queue
    drains while packets remain, which with credit flow control can only
    happen on a buffer-dependency cycle. *)

type config = {
  bandwidth : float;  (** channel bandwidth, bytes/second *)
  latency : float;  (** per-hop propagation + forwarding, seconds *)
  mtu : int;  (** packet size, bytes *)
  credits : int;  (** downstream buffer slots per (channel, lane) *)
  num_vls : int;
  max_events : int;  (** safety stop *)
}

(** 1 GB/s links, 1 us hops, 4 KiB MTU, 4 credits, 8 lanes. *)
val default_config : config

type flow_stat = {
  src : int;
  dst : int;
  bytes : int;
  start : float;  (** first packet began transmitting *)
  finish : float;  (** last packet delivered *)
}

(** [bandwidth_of stat] is the flow's achieved rate in bytes/second. *)
val bandwidth_of : flow_stat -> float

type outcome =
  | Completed of {
      makespan : float;
      flows : flow_stat array;
      packets : int;
      mean_packet_latency : float;
    }
  | Deadlocked of {
      time : float;
      delivered : int;  (** packets that made it *)
      stuck : int;  (** packets wedged in buffers or source queues *)
    }
  | Out_of_events of { delivered : int }

(** [run ?config ft ~flows] simulates [(src, dst, bytes)] message flows,
    all injected at time zero, routed and laned by [ft].
    @raise Invalid_argument on bad config, flows with [src = dst],
    negative sizes, or lanes beyond [num_vls].
    @raise Failure if a flow has no route. *)
val run : ?config:config -> Ftable.t -> flows:(int * int * int) array -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
