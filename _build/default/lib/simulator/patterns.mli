(** Traffic patterns: arrays of (source, destination) terminal pairs.

    Includes the patterns of the paper's evaluation — random bisection
    matchings (Netgauge/ORCS effective bisection bandwidth), all-to-all
    (the paper's Fig. 13 microbenchmark and the FT/IS NAS kernels) — and
    communication-skeleton proxies for the NAS Parallel Benchmarks used on
    Deimos (Figs. 14–16, Table II). The NAS proxies reproduce each
    kernel's {e pattern} (who talks to whom per iteration); volumes are
    supplied separately to the congestion model. *)

type flow = int * int
(** (source terminal node id, destination terminal node id) *)

(** [random_bisection rng ranks] splits [ranks] into two random halves and
    matches them perfectly, one flow per pair, A -> B direction (a second
    call gives a fresh matching). Odd rank counts leave one rank idle.
    @raise Invalid_argument on fewer than 2 ranks. *)
val random_bisection : Netgraph.Rng.t -> int array -> flow array

(** Every ordered pair of distinct ranks. *)
val all_to_all : int array -> flow array

(** [ring_shift ~by ranks]: rank i sends to rank (i + by) mod n. *)
val ring_shift : by:int -> int array -> flow array

(** [uniform_random rng ~flows ranks]: random (src, dst) pairs, src <>
    dst. *)
val uniform_random : Netgraph.Rng.t -> flows:int -> int array -> flow array

(** {1 Classic adversarial permutations}

    The standard synthetic patterns of the interconnect literature (Dally
    & Towles): each is a permutation of the rank index space, known to
    stress specific routing weaknesses. Power-of-two rank counts where the
    bit structure demands it. *)

(** rank i -> rank (~i): the classic worst case for dimension-order
    routing on meshes. Requires a power-of-two rank count. *)
val bit_complement : int array -> (flow array, string) result

(** rank i -> bit-reversed i: FFT-style permutation. Power of two. *)
val bit_reverse : int array -> (flow array, string) result

(** rank (r, c) -> rank (c, r) on the square rank grid: matrix transpose.
    Requires a square rank count. *)
val transpose : int array -> (flow array, string) result

(** rank i -> rank (i + n/2 - 1) mod n: tornado, the adversarial pattern
    for rings and tori. Any rank count >= 3. *)
val tornado : int array -> (flow array, string) result

(** All four, by name, for sweep experiments. *)
val adversarial : (string * (int array -> (flow array, string) result)) list

(** {1 NAS parallel benchmark communication skeletons}

    Rank counts must satisfy each kernel's requirement (square for BT/SP,
    power of two for FT/CG/MG, rectangular grid for LU); generators check
    and reject other counts, like the originals. *)

(** BT: square process grid, synchronous 2-D torus halo (4 neighbours). *)
val nas_bt : int array -> (flow array, string) result

(** SP: same decomposition as BT (the kernels differ in volume, supplied
    to the time model, not in the skeleton). *)
val nas_sp : int array -> (flow array, string) result

(** FT: transpose-based 3-D FFT — all-to-all. *)
val nas_ft : int array -> (flow array, string) result

(** CG: power-of-two grid; row-neighbour exchanges plus transpose
    partners. *)
val nas_cg : int array -> (flow array, string) result

(** MG: 3-D decomposition, halo exchanges at distances 1, 2, 4, ... (the
    multigrid hierarchy) along each dimension. *)
val nas_mg : int array -> (flow array, string) result

(** LU: 2-D pipelined wavefront, nearest-neighbour NSEW without wrap. *)
val nas_lu : int array -> (flow array, string) result

(** The Table II kernel set, in the paper's order. *)
val nas_kernels : (string * (int array -> (flow array, string) result)) list
