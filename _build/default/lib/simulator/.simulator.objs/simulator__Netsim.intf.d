lib/simulator/netsim.mli: Format Ftable
