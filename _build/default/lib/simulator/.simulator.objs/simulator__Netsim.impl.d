lib/simulator/netsim.ml: Array Eventq Format Ftable Netgraph Option Printf Queue
