lib/simulator/flitsim.mli: Format Ftable
