lib/simulator/metrics.ml: Array Format
