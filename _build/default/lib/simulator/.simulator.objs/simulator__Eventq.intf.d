lib/simulator/eventq.mli:
