lib/simulator/patterns.mli: Netgraph
