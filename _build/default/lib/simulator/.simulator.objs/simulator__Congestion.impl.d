lib/simulator/congestion.ml: Array Ftable Hashtbl List Metrics Netgraph Option Patterns Printf
