lib/simulator/collective.ml: Array Congestion List Patterns Printf
