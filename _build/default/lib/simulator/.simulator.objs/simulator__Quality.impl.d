lib/simulator/quality.ml: Array Format Ftable Metrics Netgraph
