lib/simulator/flitsim.ml: Array Format Ftable Netgraph Option Printf Queue
