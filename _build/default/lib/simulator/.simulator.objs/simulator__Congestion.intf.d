lib/simulator/congestion.mli: Ftable Metrics Netgraph Patterns
