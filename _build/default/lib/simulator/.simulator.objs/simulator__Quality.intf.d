lib/simulator/quality.mli: Format Ftable
