lib/simulator/eventq.ml: Array Float
