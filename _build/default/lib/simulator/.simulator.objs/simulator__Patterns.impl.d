lib/simulator/patterns.ml: Array Hashtbl List Netgraph Printf
