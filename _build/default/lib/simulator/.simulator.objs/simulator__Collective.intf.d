lib/simulator/collective.mli: Ftable Patterns
