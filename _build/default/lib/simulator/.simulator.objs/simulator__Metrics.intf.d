lib/simulator/metrics.mli: Format
