(** End-to-end verification of a routing: completeness (every terminal
    pair reachable by following the tables), minimality, and
    deadlock-freedom (per-layer channel dependency graphs rebuilt from
    scratch and checked acyclic — Dally & Seitz's sufficient condition,
    independent of the assignment machinery that produced the layers). *)

type report = {
  stats : Ftable.stats;
  num_layers : int;
  max_layer_seen : int;  (** highest layer actually used by some route *)
  deadlock_free : bool;
}

(** [deadlock_free ?domains ft] rebuilds one CDG per virtual layer from
    the routes and checks each for cycles; [domains > 1] checks layers in
    parallel. *)
val deadlock_free : ?domains:int -> Ftable.t -> bool

(** [report ft] validates routes and checks deadlock-freedom; [Error] if
    some pair is unroutable. *)
val report : Ftable.t -> (report, string) result

val pp_report : Format.formatter -> report -> unit
