include Router
module Verify = Verify
module Registry = Registry
module Multipath = Multipath
