type t = {
  planes : Ftable.t array;
  num_layers : int;
}

let planes t = t.planes

let graph t = Routing.Ftable.graph t.planes.(0)

let num_layers t = t.num_layers

let collect_all planes =
  (* combined (plane, src, dst, path) list, in deterministic order *)
  let acc = ref [] in
  Array.iteri
    (fun plane ft ->
      Routing.Ftable.iter_pairs ft (fun ~src ~dst p -> acc := (plane, src, dst, p) :: !acc))
    planes;
  Array.of_list (List.rev !acc)

let route ?(planes = 2) ?(heuristic = Heuristic.Weakest) ?(max_layers = 8) g =
  if planes < 1 then invalid_arg "Multipath.route: planes < 1";
  let weights = Routing.Sssp.initial_weights g in
  let rec build i acc =
    if i >= planes then Ok (Array.of_list (List.rev acc))
    else
      match Routing.Sssp.route_plane g ~weights with
      | Error msg -> Error (Router.Routing_failed msg)
      | Ok ft -> build (i + 1) (ft :: acc)
  in
  match build 0 [] with
  | Error _ as e -> e
  | Ok plane_tables -> (
    let combined = collect_all plane_tables in
    let paths = Array.map (fun (_, _, _, p) -> p) combined in
    match Layers.assign g ~paths ~max_layers ~heuristic with
    | Error msg -> Error (Router.Layers_exhausted msg)
    | Ok outcome ->
      Array.iteri
        (fun i (plane, src, dst, _) ->
          Routing.Ftable.set_layer plane_tables.(plane) ~src ~dst outcome.Layers.layer_of_path.(i))
        combined;
      Array.iter
        (fun ft -> Routing.Ftable.set_num_layers ft outcome.Layers.layers_used)
        plane_tables;
      Ok { planes = plane_tables; num_layers = outcome.Layers.layers_used })

let path t ~plane ~src ~dst =
  if plane < 0 || plane >= Array.length t.planes then invalid_arg "Multipath.path: plane out of range";
  Routing.Ftable.path t.planes.(plane) ~src ~dst

let spread_paths t ~flows =
  let k = Array.length t.planes in
  Array.mapi
    (fun i (src, dst) ->
      if src = dst then [||]
      else
        match Routing.Ftable.path t.planes.(i mod k) ~src ~dst with
        | Some p -> p
        | None -> failwith (Printf.sprintf "Multipath.spread_paths: no route %d -> %d" src dst))
    flows

let deadlock_free t =
  let combined = collect_all t.planes in
  let paths = Array.map (fun (_, _, _, p) -> p) combined in
  let layer_of_path =
    Array.map (fun (plane, src, dst, _) -> Routing.Ftable.layer t.planes.(plane) ~src ~dst) combined
  in
  Acyclic.layers_acyclic (graph t) ~paths ~layer_of_path ~num_layers:t.num_layers
