(** LMC-style multipath DFSSSP: several forwarding planes per fabric, each
    an SSSP pass continuing the previous planes' channel-weight state (so
    later planes route around channels earlier planes loaded), with ONE
    virtual-layer assignment over the union of all planes' routes.

    This mirrors OpenSM with LMC > 0: every terminal owns [2^lmc]
    addresses, each routed separately; traffic hashes over the addresses
    and enjoys path diversity. Deadlock freedom must hold jointly — routes
    of different planes sharing a virtual lane share buffers — which is
    why the layer assignment runs over the combined path set. *)

type t

(** The forwarding planes; each carries its own per-route lane table.
    Do not mutate. *)
val planes : t -> Ftable.t array

val graph : t -> Graph.t

(** Virtual lanes used jointly by all planes. *)
val num_layers : t -> int

(** [route ?planes ?heuristic ?max_layers g] computes [planes] (default 2)
    diverse planes and the joint deadlock-free lane assignment. *)
val route :
  ?planes:int ->
  ?heuristic:Heuristic.t ->
  ?max_layers:int ->
  Graph.t ->
  (t, Router.error) result

(** [path t ~plane ~src ~dst] is the route in one plane. *)
val path : t -> plane:int -> src:int -> dst:int -> Path.t option

(** [spread_paths t ~flows] picks, for flow [i], the plane [i mod planes]
    (the address-hashing a multipath-aware MPI would do) and returns the
    chosen routes — ready for {!Simulator.Congestion.evaluate_paths}. *)
val spread_paths : t -> flows:(int * int) array -> Path.t array

(** Joint deadlock-freedom over all planes' routes (verification hook;
    [route] already guarantees it). *)
val deadlock_free : t -> bool
