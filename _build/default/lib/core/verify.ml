type report = {
  stats : Ftable.stats;
  num_layers : int;
  max_layer_seen : int;
  deadlock_free : bool;
}

let collect ft =
  let paths = ref [] and layers = ref [] in
  Routing.Ftable.iter_pairs ft (fun ~src ~dst p ->
      paths := p :: !paths;
      layers := Routing.Ftable.layer ft ~src ~dst :: !layers);
  (Array.of_list (List.rev !paths), Array.of_list (List.rev !layers))

let deadlock_free ?(domains = 1) ft =
  let paths, layer_of_path = collect ft in
  let num_layers = 1 + Array.fold_left max 0 layer_of_path in
  Acyclic.layers_acyclic ~domains (Routing.Ftable.graph ft) ~paths ~layer_of_path ~num_layers

let report ft =
  match Routing.Ftable.validate ft with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok stats ->
    let _, layer_of_path = collect ft in
    let max_layer_seen = Array.fold_left max 0 layer_of_path in
    Ok
      {
        stats;
        num_layers = Routing.Ftable.num_layers ft;
        max_layer_seen;
        deadlock_free = deadlock_free ft;
      }

let pp_report ppf r =
  Format.fprintf ppf "%a layers=%d (max used %d) deadlock_free=%b" Routing.Ftable.pp_stats r.stats
    r.num_layers r.max_layer_seen r.deadlock_free
