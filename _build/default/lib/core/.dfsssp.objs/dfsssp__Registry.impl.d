lib/core/registry.ml: Ftable Graph List Result Router Routing String
