lib/core/verify.mli: Format Ftable
