lib/core/verify.ml: Acyclic Array Format Ftable List Result Routing
