lib/core/dfsssp.mli: Multipath Registry Router Verify
