lib/core/registry.mli: Coords Ftable Graph
