lib/core/dfsssp.ml: Multipath Registry Router Verify
