lib/core/router.mli: Ftable Graph Heuristic
