lib/core/multipath.ml: Acyclic Array Ftable Heuristic Layers List Printf Router Routing
