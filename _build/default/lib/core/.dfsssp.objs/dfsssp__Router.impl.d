lib/core/router.ml: Array Graph Heuristic Layers List Logs Online Routing
