lib/core/multipath.mli: Ftable Graph Heuristic Path Router
