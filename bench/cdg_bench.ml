(* Microbenchmark for the route-store / CSR CDG refactor: CDG build,
   weakest-edge scanning, offline cycle-breaking (Algorithm 2) and
   per-layer verification, measured against the pre-refactor Hashtbl
   representation ({!Deadlock.Cdg_ref}) on a 4096-endpoint XGFT and a
   16x16 torus. Also verifies that the simulator hot-loop path lookup
   allocates nothing per hop. Results land in
   bench_results/route_store.json; exits non-zero if the >= 2x speedup
   target or the zero-allocation target is missed. *)

let time_best f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (1000.0 *. !best, Option.get !result)

(* ------------------------------------------------------------------ *)
(* Resumable cycle search over the Hashtbl reference — a faithful port
   of Deadlock.Cycle, so the assignment comparison below differs only in
   the CDG representation, never in the algorithm.                      *)
(* ------------------------------------------------------------------ *)

module Ref_cycle = struct
  type color =
    | White
    | Gray
    | Black

  type frame = {
    node : int;
    succs : int array;
    mutable cursor : int;
  }

  type t = {
    cdg : Cdg_ref.t;
    color : color array;
    mutable stack : frame list;
    stack_pos : int array;
    mutable depth : int;
    mutable next_root : int;
  }

  let create cdg =
    let m = Graph.num_channels (Cdg_ref.graph cdg) in
    { cdg; color = Array.make m White; stack = []; stack_pos = Array.make m (-1); depth = 0; next_root = 0 }

  let push t node =
    t.color.(node) <- Gray;
    t.stack_pos.(node) <- t.depth;
    t.depth <- t.depth + 1;
    t.stack <- { node; succs = Cdg_ref.successors t.cdg node; cursor = 0 } :: t.stack

  let pop t =
    match t.stack with
    | [] -> assert false
    | f :: rest ->
      t.color.(f.node) <- Black;
      t.stack_pos.(f.node) <- -1;
      t.depth <- t.depth - 1;
      t.stack <- rest

  let extract_cycle t target =
    let top_depth = t.depth - 1 in
    let start_depth = t.stack_pos.(target) in
    let len = top_depth - start_depth + 1 in
    let nodes = Array.make len 0 in
    List.iteri (fun i f -> if i < len then nodes.(len - 1 - i) <- f.node) t.stack;
    Array.init len (fun i -> if i = len - 1 then (nodes.(i), target) else (nodes.(i), nodes.(i + 1)))

  let find_cycle t =
    let m = Array.length t.color in
    let result = ref None in
    let running = ref true in
    while !running do
      match t.stack with
      | [] ->
        if t.next_root >= m then running := false
        else if t.color.(t.next_root) = White then push t t.next_root
        else t.next_root <- t.next_root + 1
      | f :: _ ->
        if f.cursor >= Array.length f.succs then pop t
        else begin
          let s = f.succs.(f.cursor) in
          if not (Cdg_ref.live t.cdg ~c1:f.node ~c2:s) then f.cursor <- f.cursor + 1
          else
            match t.color.(s) with
            | Gray ->
              result := Some (extract_cycle t s);
              running := false
            | Black -> f.cursor <- f.cursor + 1
            | White ->
              f.cursor <- f.cursor + 1;
              push t s
        end
    done;
    !result

  let notify_removed t =
    let frames = Array.of_list (List.rev t.stack) in
    let n = Array.length frames in
    let cut = ref n in
    for i = 1 to n - 1 do
      if !cut = n && not (Cdg_ref.live t.cdg ~c1:frames.(i - 1).node ~c2:frames.(i).node) then cut := i
    done;
    if !cut < n then begin
      for i = !cut to n - 1 do
        t.color.(frames.(i).node) <- White;
        t.stack_pos.(frames.(i).node) <- -1
      done;
      t.depth <- !cut;
      let rec keep i acc = if i >= !cut then acc else keep (i + 1) (frames.(i) :: acc) in
      t.stack <- keep 0 []
    end
end

let ref_weakest cdg cycle =
  let best = ref cycle.(0) in
  let best_count = ref (Cdg_ref.edge_count cdg ~c1:(fst cycle.(0)) ~c2:(snd cycle.(0))) in
  Array.iter
    (fun (c1, c2) ->
      let count = Cdg_ref.edge_count cdg ~c1 ~c2 in
      if count < !best_count then begin
        best := (c1, c2);
        best_count := count
      end)
    cycle;
  !best

(* Algorithm 2 over the Hashtbl reference (build included, as in
   Layers.assign_store which builds its layer-0 CDG via of_store). *)
let ref_assign g ~path_of_pair ~max_layers =
  let layer_of_path = Array.make (Array.length path_of_pair) (-1) in
  let cdgs = Array.make max_layers None in
  let cdg i =
    match cdgs.(i) with
    | Some c -> c
    | None ->
      let c = Cdg_ref.create g in
      cdgs.(i) <- Some c;
      c
  in
  let c0 = cdg 0 in
  Array.iteri
    (fun pr p ->
      match p with
      | Some p ->
        Cdg_ref.add_path c0 ~pair:pr p;
        layer_of_path.(pr) <- 0
      | None -> ())
    path_of_pair;
  let error = ref None in
  let vl = ref 0 in
  while !error = None && !vl < max_layers && cdgs.(!vl) <> None do
    let current = cdg !vl in
    let search = Ref_cycle.create current in
    let sweeping = ref true in
    while !sweeping && !error = None do
      match Ref_cycle.find_cycle search with
      | None -> sweeping := false
      | Some cycle ->
        if !vl + 1 >= max_layers then error := Some "budget"
        else begin
          let c1, c2 = ref_weakest current cycle in
          let movers = List.sort_uniq compare (Cdg_ref.edge_pairs current ~c1 ~c2) in
          let next = cdg (!vl + 1) in
          List.iter
            (fun pr ->
              let p = Option.get path_of_pair.(pr) in
              Cdg_ref.remove_path current ~pair:pr p;
              Cdg_ref.add_path next ~pair:pr p;
              layer_of_path.(pr) <- !vl + 1)
            movers;
          Ref_cycle.notify_removed search
        end
    done;
    incr vl
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok (layer_of_path, 1 + Array.fold_left max 0 layer_of_path)

let ref_is_acyclic g cdg =
  let m = Graph.num_channels g in
  let indeg = Array.make m 0 in
  Cdg_ref.iter_edges cdg (fun _ c2 _ -> indeg.(c2) <- indeg.(c2) + 1);
  let queue = Queue.create () in
  for c = 0 to m - 1 do
    if indeg.(c) = 0 then Queue.add c queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let c = Queue.take queue in
    incr seen;
    Array.iter
      (fun c2 ->
        indeg.(c2) <- indeg.(c2) - 1;
        if indeg.(c2) = 0 then Queue.add c2 queue)
      (Cdg_ref.successors cdg c)
  done;
  !seen = m

(* ------------------------------------------------------------------ *)
(* Workload: SSSP routes toward a sampled destination set               *)
(* ------------------------------------------------------------------ *)

type workload = {
  name : string;
  graph : Graph.t;
  store : Route_store.t; (* pair id = src_index * num_dsts + dst_slot *)
  path_of_pair : Path.t option array;
}

let build_workload name g ~num_dsts =
  let terminals = Graph.terminals g in
  let nt = Array.length terminals in
  let num_dsts = min num_dsts nt in
  let dsts = Array.init num_dsts (fun j -> terminals.(j * nt / num_dsts)) in
  let ft = Ftable.create g ~algorithm:"bench" in
  let weights = Sssp.initial_weights g in
  let ws = Spf.workspace g in
  Array.iter
    (fun dst ->
      match Sssp.route_destination ws g ~weights ~ft ~dst with
      | Ok () -> ()
      | Error msg -> failwith (Printf.sprintf "%s: routing failed: %s" name msg))
    dsts;
  let store = Route_store.create g ~capacity:(nt * num_dsts) in
  Array.iteri
    (fun si src ->
      Array.iteri
        (fun j dst ->
          if src <> dst then begin
            let pair = (si * num_dsts) + j in
            if not (Ftable.path_into ft store ~pair ~src ~dst) then
              failwith (Printf.sprintf "%s: no route %d -> %d" name src dst)
          end)
        dsts)
    terminals;
  let path_of_pair =
    Array.init (Route_store.capacity store) (fun pair ->
        if Route_store.mem store ~pair then Some (Route_store.to_path store ~pair) else None)
  in
  { name; graph = g; store; path_of_pair }

(* ------------------------------------------------------------------ *)
(* Measurements                                                         *)
(* ------------------------------------------------------------------ *)

type row = {
  wname : string;
  endpoints : int;
  channels : int;
  npaths : int;
  build_csr_ms : float;
  build_ref_ms : float;
  scan_csr_ms : float;
  scan_ref_ms : float;
  assign_csr_ms : float;
  assign_ref_ms : float;
  verify_csr_ms : float;
  verify_ref_ms : float;
  layers_csr : int;
  layers_ref : int;
  combined_speedup : float;
}

let scan_rounds = 20

let measure w =
  Printf.eprintf "measuring %s...\n%!" w.name;
  let g = w.graph in
  let build_csr_ms, csr = time_best (fun () -> Cdg.of_store w.store) in
  let build_ref_ms, rc =
    time_best (fun () ->
        let rc = Cdg_ref.create g in
        Array.iteri
          (fun pr p -> match p with Some p -> Cdg_ref.add_path rc ~pair:pr p | None -> ())
          w.path_of_pair;
        rc)
  in
  assert (Cdg.num_edges csr = Cdg_ref.num_edges rc);
  (* weakest-edge scan: full min-edge_count sweep over all live edges,
     the inner workload of Heuristic.choose *)
  let scan_csr_ms, _ =
    time_best (fun () ->
        let best = ref max_int in
        for _ = 1 to scan_rounds do
          Cdg.iter_edges csr (fun _ _ count -> if count < !best then best := count)
        done;
        !best)
  in
  let scan_ref_ms, _ =
    time_best (fun () ->
        let best = ref max_int in
        for _ = 1 to scan_rounds do
          Cdg_ref.iter_edges rc (fun _ _ count -> if count < !best then best := count)
        done;
        !best)
  in
  let assign_csr_ms, csr_outcome =
    time_best (fun () ->
        match Layers.assign_store w.store ~max_layers:64 ~heuristic:Heuristic.Weakest with
        | Ok o -> (o.Layers.layer_of_path, o.Layers.layers_used)
        | Error msg -> failwith msg)
  in
  let assign_ref_ms, ref_outcome =
    time_best (fun () ->
        match ref_assign g ~path_of_pair:w.path_of_pair ~max_layers:64 with
        | Ok o -> o
        | Error msg -> failwith msg)
  in
  let csr_layers, csr_used = (fst csr_outcome, snd csr_outcome) in
  let ref_layers, ref_used = (fst ref_outcome, snd ref_outcome) in
  let verify_csr_ms, csr_free =
    time_best (fun () ->
        Acyclic.layers_acyclic_store w.store ~layer_of_path:csr_layers ~num_layers:csr_used)
  in
  let verify_ref_ms, ref_free =
    time_best (fun () ->
        let ok = ref true in
        for vl = 0 to ref_used - 1 do
          let layer = Cdg_ref.create g in
          Array.iteri
            (fun pr p -> if ref_layers.(pr) = vl then Cdg_ref.add_path layer ~pair:pr (Option.get p))
            w.path_of_pair;
          if not (ref_is_acyclic g layer) then ok := false
        done;
        !ok)
  in
  if not (csr_free && ref_free) then failwith (w.name ^ ": assignment not deadlock-free");
  {
    wname = w.name;
    endpoints = Graph.num_terminals g;
    channels = Graph.num_channels g;
    npaths = Route_store.num_paths w.store;
    build_csr_ms;
    build_ref_ms;
    scan_csr_ms;
    scan_ref_ms;
    assign_csr_ms;
    assign_ref_ms;
    verify_csr_ms;
    verify_ref_ms;
    layers_csr = csr_used;
    layers_ref = ref_used;
    combined_speedup = (build_ref_ms +. assign_ref_ms) /. (build_csr_ms +. assign_csr_ms);
  }

(* Simulator hot-loop allocation: walking every route hop by hop through
   the flat arena must allocate nothing per hop; fetching a fresh path
   array per route (the pre-refactor simulator setup) allocates several
   words per hop. *)
let alloc_per_hop_store store =
  let pbuf = Route_store.buffer store in
  let sink = ref 0 in
  let hops = ref 0 in
  let a0 = Gc.allocated_bytes () in
  Route_store.iter_pairs store (fun pair ->
      let off = Route_store.offset store ~pair in
      let len = Route_store.length store ~pair in
      for i = off to off + len - 1 do
        sink := !sink + pbuf.(i);
        incr hops
      done);
  let a1 = Gc.allocated_bytes () in
  ignore !sink;
  (a1 -. a0) /. float_of_int (max 1 !hops)

let alloc_per_hop_copies store =
  let sink = ref 0 in
  let hops = ref 0 in
  let a0 = Gc.allocated_bytes () in
  Route_store.iter_pairs store (fun pair ->
      let p = Route_store.to_path store ~pair in
      Array.iter
        (fun c ->
          sink := !sink + c;
          incr hops)
        p);
  let a1 = Gc.allocated_bytes () in
  ignore !sink;
  (a1 -. a0) /. float_of_int (max 1 !hops)

let json_row r =
  Printf.sprintf
    {|    {
      "name": "%s", "endpoints": %d, "channels": %d, "paths": %d,
      "build_ms": {"csr": %.3f, "hashtbl": %.3f, "speedup": %.2f},
      "weakest_scan_ms": {"csr": %.3f, "hashtbl": %.3f, "speedup": %.2f},
      "assign_ms": {"csr": %.3f, "hashtbl": %.3f, "speedup": %.2f,
                    "layers_csr": %d, "layers_hashtbl": %d},
      "verify_ms": {"csr": %.3f, "hashtbl": %.3f, "speedup": %.2f},
      "build_plus_break_speedup": %.2f
    }|}
    r.wname r.endpoints r.channels r.npaths r.build_csr_ms r.build_ref_ms
    (r.build_ref_ms /. r.build_csr_ms)
    r.scan_csr_ms r.scan_ref_ms
    (r.scan_ref_ms /. r.scan_csr_ms)
    r.assign_csr_ms r.assign_ref_ms
    (r.assign_ref_ms /. r.assign_csr_ms)
    r.layers_csr r.layers_ref r.verify_csr_ms r.verify_ref_ms
    (r.verify_ref_ms /. r.verify_csr_ms)
    r.combined_speedup

(* ------------------------------------------------------------------ *)
(* Heap reuse micro-bench: the SSSP kernels (Routing.Spf) allocate one
   heap per workspace and [Heap.clear] it before every tree; clear is
   O(1) (a generation-stamp bump), so reuse must beat recreating the
   heap even when each tree only ever touches a small fraction of the
   capacity — exactly the sparse-frontier shape Dijkstra produces.      *)
(* ------------------------------------------------------------------ *)

let heap_rounds = 10_000

let heap_capacity = 16_384

let heap_live = 48

let heap_churn h rng =
  for _ = 1 to heap_live do
    let x = Rng.int rng heap_capacity in
    if not (Heap.mem h x) then Heap.insert h x (Rng.int rng 1000)
  done;
  let drained = ref 0 in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some _ ->
      incr drained;
      drain ()
  in
  drain ();
  !drained

let measure_heap_reuse () =
  let reuse_ms, a =
    time_best (fun () ->
        let h = Heap.create heap_capacity in
        let rng = Rng.create 42 in
        let total = ref 0 in
        for _ = 1 to heap_rounds do
          total := !total + heap_churn h rng;
          Heap.clear h
        done;
        !total)
  in
  let fresh_ms, b =
    time_best (fun () ->
        let rng = Rng.create 42 in
        let total = ref 0 in
        for _ = 1 to heap_rounds do
          let h = Heap.create heap_capacity in
          total := !total + heap_churn h rng
        done;
        !total)
  in
  assert (a = b);
  (reuse_ms, fresh_ms)

let () =
  let xgft =
    build_workload "xgft-4096" (Topo_xgft.make ~ms:[| 64; 64 |] ~ws:[| 1; 32 |] ~endpoints:4096)
      ~num_dsts:64
  in
  let torus =
    build_workload "torus-16x16"
      (fst (Topo_torus.torus ~dims:[| 16; 16 |] ~terminals_per_switch:4))
      ~num_dsts:128
  in
  let torus_big =
    build_workload "torus-64x64"
      (fst (Topo_torus.torus ~dims:[| 64; 64 |] ~terminals_per_switch:1))
      ~num_dsts:16
  in
  let workloads = [ xgft; torus; torus_big ] in
  (* Allocator warmup: the first multi-megabyte array allocations of a
     fresh process are page-fault bound and would bill whichever
     implementation happens to run first. *)
  List.iter (fun w -> ignore (Cdg.of_store w.store)) workloads;
  List.iter (fun w -> ignore (Cdg.of_store w.store)) workloads;
  let rows = List.map measure workloads in
  List.iter
    (fun r ->
      Printf.printf
        "%-12s %5d endpoints, %6d paths | build %7.2f vs %7.2f ms | scan %7.2f vs %7.2f ms | \
         assign %7.2f vs %7.2f ms (%d/%d layers) | verify %7.2f vs %7.2f ms | build+break %.2fx\n"
        r.wname r.endpoints r.npaths r.build_csr_ms r.build_ref_ms r.scan_csr_ms r.scan_ref_ms
        r.assign_csr_ms r.assign_ref_ms r.layers_csr r.layers_ref r.verify_csr_ms r.verify_ref_ms
        r.combined_speedup)
    rows;
  let heap_reuse_ms, heap_fresh_ms = measure_heap_reuse () in
  Printf.printf
    "heap reuse (%d trees, %d/%d live): clear-and-reuse %.2f ms vs recreate %.2f ms (%.1fx)\n"
    heap_rounds heap_live heap_capacity heap_reuse_ms heap_fresh_ms
    (heap_fresh_ms /. heap_reuse_ms);
  let store_bph = alloc_per_hop_store xgft.store in
  let copy_bph = alloc_per_hop_copies xgft.store in
  Printf.printf "hot-loop allocation: %.4f bytes/hop via arena, %.2f bytes/hop via path copies\n"
    store_bph copy_bph;
  (* acceptance row: a >= 4096-endpoint topology whose assignment
     actually breaks cycles, so build AND weakest-edge breaking both
     contribute *)
  let big = List.find (fun r -> r.wname = "torus-64x64") rows in
  let speedup_ok = big.combined_speedup >= 2.0 in
  let alloc_ok = store_bph < 1.0 in
  (try
     if not (Sys.file_exists "bench_results") then Unix.mkdir "bench_results" 0o755;
     let oc = open_out "bench_results/route_store.json" in
     Printf.fprintf oc
       "{\n  \"benchmark\": \"route_store\",\n  \"topologies\": [\n%s\n  ],\n  \
        \"alloc_bytes_per_hop\": {\"arena\": %.4f, \"path_copies\": %.2f},\n  \
        \"heap_reuse_ms\": {\"clear_and_reuse\": %.3f, \"recreate\": %.3f, \"speedup\": %.2f},\n  \
        \"targets\": {\"build_plus_break_speedup_min\": 2.0, \"speedup_ok\": %b, \"alloc_ok\": %b}\n}\n"
       (String.concat ",\n" (List.map json_row rows))
       store_bph copy_bph heap_reuse_ms heap_fresh_ms
       (heap_fresh_ms /. heap_reuse_ms)
       speedup_ok alloc_ok;
     close_out oc
   with Unix.Unix_error _ | Sys_error _ -> prerr_endline "warning: could not write bench_results");
  Printf.printf "speedup target (>= 2x on %s build+break): %s\n" big.wname
    (if speedup_ok then "PASS" else "FAIL");
  Printf.printf "allocation target (< 1 byte/hop via arena): %s\n" (if alloc_ok then "PASS" else "FAIL");
  if not (speedup_ok && alloc_ok) then exit 1
