(* Benchmark gate for the fabric controller service (DESIGN.md §14).

   Starts a real server (select loop, unix socket) in-process, then
   hammers it: [clients] threads issue route queries back to back while
   a writer thread churns the topology with down/up events, exactly the
   serving mix the daemon exists for. Reports sustained throughput and
   per-query latency percentiles into bench_results/service_latency.json.

   The gate is a carried-forward throughput baseline: the first run
   records its qps as [baseline_qps]; later runs must stay above
   [gate_fraction] of that baseline (and re-record the old baseline, so
   the floor does not creep down with noisy runs). The ratio is loose on
   purpose — this catches a serving-path regression (an accidental copy,
   a lost batch, a quadratic scan), not scheduler jitter. *)

let clients = 16
let queries_per_client = 1_500
let churn_events = 24
let gate_fraction = 0.4

let sock_path =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "fabsvc_bench_%d.sock" (Unix.getpid ()))

let results_path = "bench_results/service_latency.json"

let read_baseline path =
  if not (Sys.file_exists path) then None
  else
    let text = In_channel.with_open_text path In_channel.input_all in
    match Obs.Json.of_string text with
    | Error _ -> None
    | Ok doc -> Option.bind (Obs.Json.member "baseline_qps" doc) Obs.Json.to_float

let () =
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  let g = fst (Topo_torus.torus ~dims:[| 6; 6 |] ~terminals_per_switch:1) in
  let config =
    {
      Service.Server.default_config with
      addr = Service.Proto.Unix_path sock_path;
      tick_s = 0.002;
      trace_capacity = 0;
    }
  in
  Printf.eprintf "routing the initial fabric...\n%!";
  let server =
    match Service.Server.create ~config g with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "service_bench: %s\n" msg;
      exit 1
  in
  let server_thread = Thread.create Service.Server.serve server in
  let addr = Service.Proto.Unix_path sock_path in
  let terms = Graph.terminals g in
  let nt = Array.length terms in

  (* Warmup: fault in the first epoch's snapshot and touch the socket
     path once before the clock starts. *)
  (match Service.Client.with_connect addr (fun c -> Service.Client.ping c) with
  | Ok _ -> ()
  | Error msg ->
    Printf.eprintf "service_bench: warmup: %s\n" msg;
    exit 1);

  let latencies = Array.make_matrix clients queries_per_client 0.0 in
  let errors = Atomic.make 0 in
  let reader tid =
    match Service.Client.connect addr with
    | Error _ -> Atomic.incr errors
    | Ok c ->
      Fun.protect ~finally:(fun () -> Service.Client.close c) (fun () ->
          let rng = Rng.create (0xBE7C + tid) in
          for q = 0 to queries_per_client - 1 do
            let src = terms.(Rng.int rng nt) in
            let dst = ref terms.(Rng.int rng nt) in
            while !dst = src do
              dst := terms.(Rng.int rng nt)
            done;
            let t0 = Unix.gettimeofday () in
            (match Service.Client.route c ~src ~dst:!dst with
            | Ok _ -> ()
            | Error _ -> Atomic.incr errors);
            latencies.(tid).(q) <- (Unix.gettimeofday () -. t0) *. 1e3
          done)
  in
  let churn_applied = ref 0 in
  let writer () =
    match Service.Client.connect addr with
    | Error _ -> Atomic.incr errors
    | Ok c ->
      Fun.protect ~finally:(fun () -> Service.Client.close c) (fun () ->
          let schedule =
            Fabric.Schedule.generate g ~rng:(Rng.create 4242) ~events:churn_events ()
          in
          List.iter
            (fun ev ->
              let rec push retries =
                match Service.Client.event c ev with
                | Ok (Service.Client.Applied _) -> incr churn_applied
                | Ok (Service.Client.Busy _) when retries > 0 ->
                  Thread.delay 0.001;
                  push (retries - 1)
                | Ok (Service.Client.Busy _) | Error _ -> Atomic.incr errors
              in
              push 200)
            schedule)
  in
  Printf.eprintf "%d clients x %d queries under %d churn events...\n%!" clients
    queries_per_client churn_events;
  let t0 = Unix.gettimeofday () in
  let threads =
    Thread.create writer () :: List.init clients (fun tid -> Thread.create reader tid)
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in

  (match Service.Client.with_connect addr (fun c -> Service.Client.shutdown c) with
  | Ok () -> ()
  | Error msg -> Printf.eprintf "service_bench: shutdown: %s\n" msg);
  Thread.join server_thread;

  let total = clients * queries_per_client in
  let flat = Array.concat (Array.to_list latencies) in
  Array.sort compare flat;
  let qps = float_of_int total /. wall_s in
  let p50 = Obs.Stat.percentile 0.50 flat in
  let p99 = Obs.Stat.percentile 0.99 flat in
  let pmax = flat.(Array.length flat - 1) in
  let final_epoch = Fabric.Manager.epoch (Service.Server.manager server) in

  let prior = read_baseline results_path in
  let baseline_qps = match prior with Some b -> b | None -> qps in
  let gate_ok = qps >= gate_fraction *. baseline_qps in
  let gate_status =
    match prior with
    | None -> "baseline recorded"
    | Some _ when gate_ok -> "pass"
    | Some _ -> "fail"
  in
  let doc =
    Obs.Json.Obj
      [
        ("benchmark", Obs.Json.Str "service_latency");
        ("topology", Obs.Json.Str "torus-6x6");
        ("clients", Obs.Json.Num (float_of_int clients));
        ("queries", Obs.Json.Num (float_of_int total));
        ("churn_events_applied", Obs.Json.Num (float_of_int !churn_applied));
        ("final_epoch", Obs.Json.Num (float_of_int final_epoch));
        ("errors", Obs.Json.Num (float_of_int (Atomic.get errors)));
        ("wall_s", Obs.Json.Num wall_s);
        ("qps", Obs.Json.Num qps);
        ( "latency_ms",
          Obs.Json.Obj
            [ ("p50", Obs.Json.Num p50); ("p99", Obs.Json.Num p99); ("max", Obs.Json.Num pmax) ]
        );
        ("baseline_qps", Obs.Json.Num baseline_qps);
        ( "gate",
          Obs.Json.Obj
            [
              ( "target",
                Obs.Json.Str
                  (Printf.sprintf "qps >= %.0f%% of carried baseline under churn"
                     (100.0 *. gate_fraction)) );
              ("status", Obs.Json.Str gate_status);
            ] );
      ]
  in
  (try Unix.mkdir "bench_results" 0o755 with Unix.Unix_error _ -> ());
  Out_channel.with_open_text results_path (fun oc ->
      output_string oc (Obs.Json.to_string doc);
      output_char oc '\n');
  Printf.printf "service_latency: %d queries in %.2f s (%.0f qps), p50 %.3f ms, p99 %.3f ms\n"
    total wall_s qps p50 p99;
  Printf.printf "churn: %d/%d events applied, final epoch %d, %d errors\n" !churn_applied
    churn_events final_epoch (Atomic.get errors);
  Printf.printf "gate (qps >= %.0f%% of baseline %.0f): %s\n" (100.0 *. gate_fraction)
    baseline_qps
    (String.uppercase_ascii gate_status);
  if Atomic.get errors > 0 then begin
    Printf.eprintf "service_bench: %d request errors\n" (Atomic.get errors);
    exit 1
  end;
  if not gate_ok then exit 1
