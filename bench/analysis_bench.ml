(* Microbenchmark for the topology-level static analyzer (DESIGN.md,
   doc/static_analysis.md): Existence.analyze — the SCC passes, the
   clean-core labeling and the piercing arithmetic — must stay a small
   fraction of the route-build work it gates. Measured on a
   4096-endpoint XGFT (the paper-scale fabric of bench/cdg_bench.ml)
   plus a 1024-endpoint torus, with witness generation + trusted
   re-check timed on a 64-switch unidirectional ring where the bound is
   nontrivial. Results land in bench_results/analysis.json; exits
   non-zero if the analyzer exceeds 10% of the dfsssp route-build time
   on the 4096-endpoint fabric. *)

let time_best f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (1000.0 *. !best, Option.get !result)

(* A unidirectional ring (only clockwise switch->switch channels), the
   fabric family where the lower bound is tight at ceil n/2 and the
   core witness path does real work. *)
let one_way_ring ~switches =
  let g = Topo_ring.make ~switches ~terminals_per_switch:1 in
  let sws = Graph.switches g in
  let n = Array.length sws in
  let next = Hashtbl.create n in
  Array.iteri (fun i s -> Hashtbl.replace next s sws.((i + 1) mod n)) sws;
  let enabled =
    Array.map
      (fun (c : Channel.t) ->
        if Graph.is_switch g c.Channel.src && Graph.is_switch g c.Channel.dst then
          Hashtbl.find next c.Channel.src = c.Channel.dst
        else true)
      (Graph.channels g)
  in
  Graph.with_enabled g ~enabled

type row = {
  name : string;
  endpoints : int;
  channels : int;
  build_ms : float;
  analyze_ms : float;
  lb : int;
  layers : int;
  ratio : float;
}

let measure name g =
  Printf.eprintf "measuring %s...\n%!" name;
  (* the cost being gated: one full dfsssp route build over the fabric
     (routes, cycle breaking, layer assignment) as shipped — recommended
     SSSP batch, default kernel, default break engine — timed once, it
     is the dominant term by design *)
  let t0 = Unix.gettimeofday () in
  let ft =
    match
      Harness.Runs.run_named ~max_layers:64 ~batch:Routing.Sssp.recommended_batch
        ~kernel:Routing.Spf.Auto "dfsssp" g
    with
    | Ok ft -> ft
    | Error msg -> failwith (Printf.sprintf "%s: dfsssp refused: %s" name msg)
  in
  let build_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let analyze_ms, ex = time_best (fun () -> Analysis.Existence.analyze g) in
  {
    name;
    endpoints = Graph.num_terminals g;
    channels = Graph.num_channels g;
    build_ms;
    analyze_ms;
    lb = ex.Analysis.Existence.min_layers_lb;
    layers = Routing.Ftable.num_layers ft;
    ratio = analyze_ms /. build_ms;
  }

let json_row r =
  Printf.sprintf
    {|    {"name": "%s", "endpoints": %d, "channels": %d,
     "route_build_ms": %.3f, "analyze_ms": %.3f, "analyze_over_build": %.4f,
     "min_layers_lb": %d, "layers_achieved": %d}|}
    r.name r.endpoints r.channels r.build_ms r.analyze_ms r.ratio r.lb r.layers

let () =
  let rows =
    [
      measure "xgft-4096" (Topo_xgft.make ~ms:[| 64; 64 |] ~ws:[| 1; 32 |] ~endpoints:4096);
      measure "torus-16x16" (fst (Topo_torus.torus ~dims:[| 16; 16 |] ~terminals_per_switch:4));
    ]
  in
  List.iter
    (fun r ->
      Printf.printf
        "%-12s %5d endpoints | route build %8.2f ms | existence %6.3f ms (%.2f%%) | lb %d, \
         achieved %d\n"
        r.name r.endpoints r.build_ms r.analyze_ms (100.0 *. r.ratio) r.lb r.layers)
    rows;
  (* witness path: generate a budget-infeasibility counterexample on a
     64-switch one-way ring and run the trusted re-check on it *)
  let ring = one_way_ring ~switches:64 in
  let analyze_ring_ms, ex = time_best (fun () -> Analysis.Existence.analyze ring) in
  let core = List.hd ex.Analysis.Existence.cores in
  let witness_ms, w =
    time_best (fun () ->
        match Analysis.Witness.of_core ring core with
        | Ok w -> w
        | Error msg -> failwith ("of_core: " ^ msg))
  in
  let recheck_ms, () =
    time_best (fun () ->
        match Analysis.Witness.check_graph w ring with
        | Ok () -> ()
        | Error msg -> failwith ("check_graph: " ^ msg))
  in
  Printf.printf
    "one-way-ring-64: analyze %.3f ms (lb %d) | witness build %.3f ms | trusted re-check %.3f ms\n"
    analyze_ring_ms ex.Analysis.Existence.min_layers_lb witness_ms recheck_ms;
  let big = List.hd rows in
  let ratio_ok = big.ratio <= 0.10 in
  (try
     if not (Sys.file_exists "bench_results") then Unix.mkdir "bench_results" 0o755;
     let oc = open_out "bench_results/analysis.json" in
     Printf.fprintf oc
       "{\n  \"benchmark\": \"analysis\",\n  \"topologies\": [\n%s\n  ],\n  \
        \"witness\": {\"fabric\": \"one-way-ring-64\", \"analyze_ms\": %.3f, \"min_layers_lb\": \
        %d, \"build_ms\": %.3f, \"recheck_ms\": %.3f},\n  \"targets\": \
        {\"analyze_over_build_max\": 0.10, \"ratio_ok\": %b}\n}\n"
       (String.concat ",\n" (List.map json_row rows))
       analyze_ring_ms ex.Analysis.Existence.min_layers_lb witness_ms recheck_ms ratio_ok;
     close_out oc
   with Unix.Unix_error _ | Sys_error _ -> prerr_endline "warning: could not write bench_results");
  Printf.printf "analyzer cost target (<= 10%% of route build on %s): %s\n" big.name
    (if ratio_ok then "PASS" else "FAIL");
  if not ratio_ok then exit 1
