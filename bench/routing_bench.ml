(* Benchmark gate for the domain-parallel routing pipeline (DESIGN.md
   section 12) and the pluggable SSSP kernels behind it (§15). Per
   topology it measures:

   - the SSSP + cycle-breaking pipeline sequentially (the legacy
     per-destination recurrence) and through the batched-snapshot
     driver, with the parallel run decomposed into its snapshot-freeze
     and tree-compute stages via the always-on [sssp.snapshot] /
     [sssp.route_destinations] timers;
   - each kernel in isolation — binary-heap oracle, bucket queue,
     incremental reuse — over one frozen weight plane (one stamp, so
     the incremental cache is allowed to work);

   and writes bench_results/routing_parallel.json. Gates:

   - parallel SSSP >= 1.0x sequential on every topology. The hardware
     may have a single domain: the batched driver then runs inline,
     skipping the snapshot copy, and per-batch stamps let the
     incremental kernel reuse switch trees that the per-destination
     sequential recurrence cannot — so batching must pay even with no
     parallelism at all.
   - bucket kernel >= 1.3x the heap oracle on the torus and XGFT
     workloads (uniform weight planes are the bucket core's home turf).
   - the default kernel ([Spf.resolve Spf.Auto]) is the fastest
     measured kernel on every topology, within a 5% noise allowance.
   - pipeline speedup >= 2x on the 4096-endpoint XGFT — only
     enforceable with >= 4 hardware domains; recorded as skipped (exit
     0) otherwise.
   - obs compiled in but disabled keeps the sequential SSSP stage
     within 50% of the previous run — a coarse tripwire for
     instrumentation accidentally becoming unconditional
     (bench_results/obs_overhead.json).

   [--equivalence] runs a seconds-long cross-kernel table-equality
   check instead (wired into `make check`): every kernel must produce
   the heap oracle's tables and final weights bit-for-bit. *)

(* Compact before sampling: the workloads allocate multi-hundred-MB
   tables, and whichever variant is measured after a big allocation
   otherwise pays the previous variant's major-GC debt. *)
let time_best f =
  Gc.compact ();
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (1000.0 *. !best, Option.get !result)

(* Interleaved best-of-N for variants being compared against each
   other: alternating the thunks each round exposes both to the same
   noise (GC phase, neighbours on a shared box) instead of letting one
   sample a calm window the other never sees. *)
let time_race ?(rounds = 4) thunks =
  Gc.compact ();
  let best = Array.make (Array.length thunks) infinity in
  for _ = 1 to rounds do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        f ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < best.(i) then best.(i) <- dt)
      thunks
  done;
  Array.map (fun b -> 1000.0 *. b) best

let timer_sum name =
  match Obs.Registry.find_timer (Obs.Registry.default ()) name with
  | Some t -> Obs.Timer.sum_s t
  | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Workloads: the cdg_bench trio, routed toward a contiguous block of
   terminals grouped by attached switch (see build_workload).           *)
(* ------------------------------------------------------------------ *)

type workload = {
  name : string;
  graph : Graph.t;
  dsts : int array;
  bucket_gated : bool; (* torus/xgft: bucket-vs-heap gate applies *)
}

let attached_switch g t =
  let inc = Graph.in_channels g t in
  if Array.length inc = 0 then -1 else (Graph.channel g inc.(0)).Channel.src

(* A contiguous terminal block, grouped by attached switch. Grouping is
   the destination order a locality-aware controller feeds
   route_destinations: consecutive same-switch terminals are what the
   incremental kernel converts into cache hits. On tori the terminal id
   order already attaches contiguously, so the sort is the identity;
   XGFTs attach endpoints round-robin across leaves, and without the
   sort no block of any size would ever repeat a switch. *)
let build_workload name g ~num_dsts ~bucket_gated =
  let terminals = Array.copy (Graph.terminals g) in
  Array.stable_sort (fun a b -> compare (attached_switch g a) (attached_switch g b)) terminals;
  let num_dsts = min num_dsts (Array.length terminals) in
  { name; graph = g; dsts = Array.sub terminals 0 num_dsts; bucket_gated }

(* ------------------------------------------------------------------ *)
(* The pipeline: SSSP toward the destination subset, then path
   extraction into a route store and offline cycle-breaking
   (Algorithm 2) — the work fabric_tool does per routing pass.          *)
(* ------------------------------------------------------------------ *)

let sssp_stage ?batch ?domains ?pool ?kernel w () =
  let weights = Sssp.initial_weights w.graph in
  let ft = Ftable.create w.graph ~algorithm:"bench" in
  (match Sssp.route_destinations ?batch ?domains ?pool ?kernel w.graph ~weights ~ft ~dsts:w.dsts with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "%s: routing failed: %s" w.name msg));
  ft

let break_stage ?domains w ft () =
  let terminals = Graph.terminals w.graph in
  let num_dsts = Array.length w.dsts in
  let store = Route_store.create w.graph ~capacity:(Array.length terminals * num_dsts) in
  Array.iteri
    (fun si src ->
      Array.iteri
        (fun j dst ->
          if src <> dst then
            let pair = (si * num_dsts) + j in
            if not (Ftable.path_into ft store ~pair ~src ~dst) then
              failwith (Printf.sprintf "%s: no route %d -> %d" w.name src dst))
        w.dsts)
    terminals;
  match Layers.assign_store ?domains store ~max_layers:64 ~heuristic:Heuristic.Weakest with
  | Ok o -> o.Layers.layers_used
  | Error msg -> failwith (Printf.sprintf "%s: cycle breaking failed: %s" w.name msg)

(* One kernel, in isolation: shortest-path trees toward every sampled
   destination over a frozen uniform weight plane — no table fills, no
   flow walks, one stamp for the whole sweep. This is the number the
   kernel-selection gates compare. *)
let kernel_sweep kernel w =
  let ws = Spf.workspace ~kernel w.graph in
  let weights = Sssp.initial_weights w.graph in
  fun () ->
    let stamp = Spf.fresh_stamp () in
    let settled = ref 0 in
    Array.iter
      (fun dst ->
        let t = Spf.compute ws w.graph ~weights ~stamp ~dst in
        settled := !settled + t.Spf.reached)
      w.dsts;
    !settled

type row = {
  wname : string;
  endpoints : int;
  num_dsts : int;
  bucket_gated : bool;
  seq_sssp_ms : float;
  seq_break_ms : float;
  par_sssp_ms : float;
  par_break_ms : float;
  par_snapshot_ms : float; (* snapshot-freeze share of one parallel run *)
  par_compute_ms : float; (* the rest of that run *)
  kernel_ms : (Spf.kind * float) list; (* isolated sweeps, one per kernel *)
  layers : int;
}

let sssp_speedup r = r.seq_sssp_ms /. r.par_sssp_ms

let pipeline_speedup r =
  (r.seq_sssp_ms +. r.seq_break_ms) /. (r.par_sssp_ms +. r.par_break_ms)

let concrete_kernels = [ Spf.Heap; Spf.Bucket; Spf.Incremental ]

let default_kernel = Spf.resolve Spf.Auto

let kernel_time r k = List.assoc k r.kernel_ms

let measure ~batch ~domains ~pool w =
  Printf.eprintf "measuring %s...\n%!" w.name;
  let n = Graph.num_nodes w.graph in
  let weights = Sssp.initial_weights w.graph in
  let ft_seq = Ftable.create w.graph ~algorithm:"bench" in
  let ft_par = Ftable.create w.graph ~algorithm:"bench" in
  let route ft ?batch ?pool () =
    Array.fill weights 0 (Array.length weights) (n * n);
    match Sssp.route_destinations ?batch ?pool w.graph ~weights ~ft ~dsts:w.dsts with
    | Ok () -> ()
    | Error msg -> failwith (Printf.sprintf "%s: routing failed: %s" w.name msg)
  in
  (* First-touch warmup of both freshly allocated tables, doubling as
     the determinism smoke: two parallel runs into the two tables must
     agree entry-for-entry (test/test_parallel.ml proves the full
     contract). *)
  route ft_seq ~batch ~pool ();
  route ft_par ~batch ~pool ();
  if (Ftable.diff ft_seq ft_par).Ftable.entries_changed <> 0 then
    failwith (w.name ^ ": parallel pipeline not deterministic");
  (* The gated comparison: route_destinations itself, sequential vs
     batched, over the same preallocated table/weight storage — the
     table allocation the stage shares with every variant is not part
     of what batching can speed up, so it is kept out of the timed
     region. *)
  let times =
    time_race [| (fun () -> route ft_seq ()); (fun () -> route ft_par ~batch ~pool ()) |]
  in
  let seq_sssp_ms = times.(0) and par_sssp_ms = times.(1) in
  (* Stage decomposition of one parallel run, from the always-on
     timers: snapshot freezes vs everything else (tree computes, table
     fills, flow walks, merges). *)
  let snap0 = timer_sum "sssp.snapshot" and plane0 = timer_sum "sssp.route_destinations" in
  route ft_par ~batch ~pool ();
  let par_snapshot_ms = 1000.0 *. (timer_sum "sssp.snapshot" -. snap0) in
  let par_compute_ms =
    (1000.0 *. (timer_sum "sssp.route_destinations" -. plane0)) -. par_snapshot_ms
  in
  (* After the race, ft_seq holds the sequential tables and ft_par the
     batched ones; break each so the pipeline totals stay comparable. *)
  route ft_seq ();
  let seq_break_ms, seq_layers = time_best (break_stage w ft_seq) in
  let par_break_ms, par_layers = time_best (break_stage ~domains w ft_par) in
  let kernel_thunks =
    List.map
      (fun k ->
        let sweep = kernel_sweep k w in
        fun () -> ignore (sweep ()))
      concrete_kernels
  in
  let kernel_times = time_race (Array.of_list kernel_thunks) in
  let kernel_ms = List.mapi (fun i k -> (k, kernel_times.(i))) concrete_kernels in
  {
    wname = w.name;
    endpoints = Graph.num_terminals w.graph;
    num_dsts = Array.length w.dsts;
    bucket_gated = w.bucket_gated;
    seq_sssp_ms;
    seq_break_ms;
    par_sssp_ms;
    par_break_ms;
    par_snapshot_ms;
    par_compute_ms;
    kernel_ms;
    layers = max seq_layers par_layers;
  }

let json_row r =
  let kernels =
    String.concat ", "
      (List.map
         (fun (k, ms) -> Printf.sprintf "\"%s\": %.3f" (Spf.kind_to_string k) ms)
         r.kernel_ms)
  in
  Printf.sprintf
    {|    {
      "name": "%s", "endpoints": %d, "destinations": %d, "layers": %d,
      "sssp_ms": {"sequential": %.3f, "parallel": %.3f, "speedup": %.2f},
      "stage_ms": {"snapshot": %.3f, "compute": %.3f},
      "kernel_ms": {%s, "default": "%s"},
      "break_ms": {"sequential": %.3f, "parallel": %.3f},
      "pipeline_ms": {"sequential": %.3f, "parallel": %.3f, "speedup": %.2f}
    }|}
    r.wname r.endpoints r.num_dsts r.layers r.seq_sssp_ms r.par_sssp_ms (sssp_speedup r)
    r.par_snapshot_ms r.par_compute_ms kernels
    (Spf.kind_to_string default_kernel)
    r.seq_break_ms r.par_break_ms
    (r.seq_sssp_ms +. r.seq_break_ms)
    (r.par_sssp_ms +. r.par_break_ms)
    (pipeline_speedup r)

(* ------------------------------------------------------------------ *)
(* Observability overhead (DESIGN.md section 13): the sequential SSSP
   stage with obs compiled in but disabled must stay within 50% of the
   previous run's times (read from routing_parallel.json before this
   run overwrites it), and the cost of enabled tracing is recorded
   informationally. 50% is a noise ceiling for this cross-process
   wall-clock comparison on a shared box, not the expected cost — the
   disabled fast path is one atomic load.                               *)
(* ------------------------------------------------------------------ *)

(* name -> sequential pipeline ms of the previous routing_parallel.json *)
let read_baseline path =
  if not (Sys.file_exists path) then None
  else
    let text = In_channel.with_open_text path In_channel.input_all in
    match Obs.Json.of_string text with
    | Error _ -> None
    | Ok doc ->
      let open Obs.Json in
      let rows =
        match member "topologies" doc with
        | Some j -> Option.value ~default:[] (to_list j)
        | None -> []
      in
      let entry row =
        match (member "name" row, member "sssp_ms" row) with
        | Some name, Some sssp -> (
          match (to_str name, Option.bind (member "sequential" sssp) to_float) with
          | Some n, Some ms -> Some (n, ms)
          | _ -> None)
        | _ -> None
      in
      let entries = List.filter_map entry rows in
      if entries = [] then None else Some entries

let measure_enabled_overhead w =
  Printf.eprintf "measuring %s with tracing enabled...\n%!" w.name;
  let pipeline () =
    let ft = sssp_stage w () in
    ignore (break_stage w ft ())
  in
  let off_ms, () = time_best pipeline in
  let spans = Obs.Registry.counter ~registry:(Obs.Registry.create ()) "bench.spans" in
  let on_ms, () =
    Obs.Control.with_enabled true (fun () ->
        Obs.Trace.with_sink (Obs.Trace.counting_sink spans) (fun () -> time_best pipeline))
  in
  (w.name, off_ms, on_ms, Obs.Counter.value spans)

(* ------------------------------------------------------------------ *)
(* --equivalence: the `make check` slice. Cross-kernel bit-for-bit
   table and weight equality on two small fabrics, in well under a
   second — the full property net lives in test/test_spf.ml.            *)
(* ------------------------------------------------------------------ *)

let run_equivalence () =
  let fabrics =
    [
      ("torus-8x8", fst (Topo_torus.torus ~dims:[| 8; 8 |] ~terminals_per_switch:2));
      ("xgft-128", Topo_xgft.make ~ms:[| 8; 16 |] ~ws:[| 1; 8 |] ~endpoints:128);
    ]
  in
  let failures = ref 0 in
  List.iter
    (fun (name, g) ->
      let run kernel =
        let weights = Sssp.initial_weights g in
        match Sssp.route_plane ~batch:Sssp.recommended_batch ~kernel g ~weights with
        | Ok ft -> (ft, weights)
        | Error msg -> failwith (Printf.sprintf "%s (%s): %s" name (Spf.kind_to_string kernel) msg)
      in
      let oft, ow = run Spf.Heap in
      List.iter
        (fun kernel ->
          let ft, w = run kernel in
          let ok = (Ftable.diff oft ft).Ftable.entries_changed = 0 && w = ow in
          Printf.printf "equivalence %-10s %-12s %s\n" name (Spf.kind_to_string kernel)
            (if ok then "ok" else "MISMATCH");
          if not ok then incr failures)
        [ Spf.Auto; Spf.Bucket; Spf.Incremental ])
    fabrics;
  if !failures > 0 then begin
    Printf.printf "kernel equivalence: FAIL (%d mismatches)\n" !failures;
    exit 1
  end;
  Printf.printf "kernel equivalence: PASS\n"

(* ------------------------------------------------------------------ *)
(* Main                                                                 *)
(* ------------------------------------------------------------------ *)

let () =
  if Array.exists (( = ) "--equivalence") Sys.argv then begin
    run_equivalence ();
    exit 0
  end;
  let available = Domain.recommended_domain_count () in
  (* Clamp to the hardware: requesting more domains than cores measures
     oversubscription noise, not parallel speedup (the 1-core CI box
     used to run 2 domains here). Both values land in the JSON. *)
  let domains = max 1 (min available 4) in
  let batch = Sssp.recommended_batch in
  let baseline = read_baseline "bench_results/routing_parallel.json" in
  let workloads =
    [
      build_workload "xgft-4096"
        (Topo_xgft.make ~ms:[| 32; 64 |] ~ws:[| 1; 32 |] ~endpoints:4096)
        ~num_dsts:64 ~bucket_gated:true;
      build_workload "torus-16x16"
        (fst (Topo_torus.torus ~dims:[| 16; 16 |] ~terminals_per_switch:4))
        ~num_dsts:128 ~bucket_gated:true;
      build_workload "torus-64x64"
        (fst (Topo_torus.torus ~dims:[| 64; 64 |] ~terminals_per_switch:2))
        ~num_dsts:16 ~bucket_gated:true;
    ]
  in
  let pool = Sssp.create_pool ~domains () in
  let rows =
    Fun.protect
      ~finally:(fun () -> Sssp.destroy_pool pool)
      (fun () -> List.map (measure ~batch ~domains ~pool) workloads)
  in
  List.iter
    (fun r ->
      Printf.printf
        "%-12s %5d endpoints, %3d dsts | sssp %8.2f vs %8.2f ms (%.2fx; snap %.2f + compute %.2f) \
         | pipeline %.2fx\n"
        r.wname r.endpoints r.num_dsts r.seq_sssp_ms r.par_sssp_ms (sssp_speedup r)
        r.par_snapshot_ms r.par_compute_ms (pipeline_speedup r);
      List.iter
        (fun (k, ms) ->
          Printf.printf "             kernel %-12s %8.2f ms (%.2fx vs heap)%s\n"
            (Spf.kind_to_string k) ms
            (kernel_time r Spf.Heap /. ms)
            (if k = default_kernel then "  [default]" else ""))
        r.kernel_ms)
    rows;
  let big = List.find (fun r -> r.endpoints >= 4096) rows in
  (* ---- gates ---- *)
  let pipeline_enforced = available >= 4 in
  let pipeline_ok = pipeline_speedup big >= 2.0 in
  let pipeline_status =
    if not pipeline_enforced then
      Printf.sprintf "skipped: %d hardware domain%s available (gate needs >= 4)" available
        (if available = 1 then "" else "s")
    else if pipeline_ok then "pass"
    else "fail"
  in
  let parallel_ok = List.for_all (fun r -> sssp_speedup r >= 1.0) rows in
  let bucket_rows = List.filter (fun r -> r.bucket_gated) rows in
  let bucket_ok =
    List.for_all (fun r -> kernel_time r Spf.Heap /. kernel_time r Spf.Bucket >= 1.3) bucket_rows
  in
  (* 5% noise allowance: the default must not measurably lose to any
     alternative kernel anywhere. *)
  let default_ok =
    List.for_all
      (fun r ->
        let d = kernel_time r default_kernel in
        List.for_all (fun (_, ms) -> d <= ms *. 1.05) r.kernel_ms)
      rows
  in
  let status ok = if ok then "pass" else "fail" in
  (try
     if not (Sys.file_exists "bench_results") then Unix.mkdir "bench_results" 0o755;
     let oc = open_out "bench_results/routing_parallel.json" in
     Printf.fprintf oc
       "{\n  \"benchmark\": \"routing_parallel\",\n  \"domains_available\": %d,\n  \
        \"domains_used\": %d,\n  \"batch\": %d,\n  \"default_kernel\": \"%s\",\n  \
        \"topologies\": [\n%s\n  ],\n  \"gate\": {\"target\": \"pipeline speedup >= 2.0 on %s \
        with >= 4 domains\", \"status\": \"%s\"},\n  \"gates\": {\n    \"parallel_not_slower\": \
        {\"target\": \"parallel sssp >= 1.0x sequential on every topology\", \"status\": \
        \"%s\"},\n    \"bucket_kernel\": {\"target\": \"bucket >= 1.3x heap on torus/xgft \
        kernel sweeps\", \"status\": \"%s\"},\n    \"default_kernel_fastest\": {\"target\": \
        \"default kernel within 5%% of the fastest on every topology\", \"status\": \"%s\"}\n  \
        }\n}\n"
       available domains batch
       (Spf.kind_to_string default_kernel)
       (String.concat ",\n" (List.map json_row rows))
       big.wname pipeline_status (status parallel_ok) (status bucket_ok) (status default_ok);
     close_out oc
   with Unix.Unix_error _ | Sys_error _ -> prerr_endline "warning: could not write bench_results");
  Printf.printf "speedup gate (>= 2x pipeline on %s, %d domains available): %s\n" big.wname
    available
    (String.uppercase_ascii pipeline_status);
  Printf.printf "parallel-not-slower gate (>= 1.0x sssp everywhere): %s\n"
    (String.uppercase_ascii (status parallel_ok));
  Printf.printf "bucket kernel gate (>= 1.3x heap on torus/xgft): %s\n"
    (String.uppercase_ascii (status bucket_ok));
  Printf.printf "default kernel gate (%s fastest within 5%%): %s\n"
    (Spf.kind_to_string default_kernel)
    (String.uppercase_ascii (status default_ok));
  (* ---- observability overhead ---- *)
  let disabled_cmp =
    match baseline with
    | None -> None
    | Some base ->
      let matched =
        List.filter_map
          (fun r -> Option.map (fun b -> (r.wname, b, r.seq_sssp_ms)) (List.assoc_opt r.wname base))
          rows
      in
      if matched = [] then None
      else
        let bsum = List.fold_left (fun a (_, b, _) -> a +. b) 0.0 matched in
        let csum = List.fold_left (fun a (_, _, c) -> a +. c) 0.0 matched in
        Some (matched, bsum, csum, (csum -. bsum) /. bsum)
  in
  (* The gate compares the sequential SSSP stage only — the path the
     sssp.*/spf.* instrumentation actually sits on. The cycle-breaking
     stage is excluded on purpose: its allocation-heavy seconds swing
     2x+ with ambient heap state, which would drown any signal. Even
     so, a cross-process wall-clock comparison on shared hardware
     carries +-30% of ambient noise, so this is a coarse tripwire for
     instrumentation accidentally becoming unconditional (always 2x+
     on this path), not a profiler: the threshold is 50%. The finer
     number — same-process enabled vs disabled tracing — is recorded
     alongside, informationally. *)
  let obs_gate_ok = match disabled_cmp with None -> true | Some (_, _, _, d) -> d < 0.50 in
  let obs_gate_status =
    match disabled_cmp with
    | None -> "skipped: no baseline"
    | Some _ when obs_gate_ok -> "pass"
    | Some _ -> "fail"
  in
  (* the smallest workload carries the enabled-tracing measurement; the
     number is informational, not a gate *)
  let en_name, en_off, en_on, en_spans =
    measure_enabled_overhead (List.nth workloads (List.length workloads - 1))
  in
  let overhead_json =
    let open Obs.Json in
    Obj
      [
        ("benchmark", Str "obs_overhead");
        ( "disabled",
          Obj
            (( "gate",
               Str
                 (Printf.sprintf "sequential SSSP stage with obs compiled in but disabled within \
                                  50%% of the previous run: %s" obs_gate_status) )
            ::
            (match disabled_cmp with
            | None -> []
            | Some (matched, bsum, csum, delta) ->
              [
                ("baseline_sssp_ms", Num bsum);
                ("current_sssp_ms", Num csum);
                ("overhead_fraction", Num delta);
                ( "topologies",
                  Obj
                    (List.map
                       (fun (n, b, c) ->
                         (n, Obj [ ("baseline_ms", Num b); ("current_ms", Num c) ]))
                       matched) );
              ])) );
        ( "enabled",
          Obj
            [
              ("workload", Str en_name);
              ("disabled_ms", Num en_off);
              ("traced_ms", Num en_on);
              ("spans", Num (float_of_int en_spans));
              ("overhead_fraction", Num ((en_on -. en_off) /. en_off));
            ] );
      ]
  in
  (try
     Out_channel.with_open_text "bench_results/obs_overhead.json" (fun oc ->
         Out_channel.output_string oc (Obs.Json.to_string overhead_json);
         Out_channel.output_char oc '\n')
   with Sys_error _ -> prerr_endline "warning: could not write bench_results/obs_overhead.json");
  (match disabled_cmp with
  | None -> Printf.printf "obs overhead gate: SKIPPED (no baseline)\n"
  | Some (_, bsum, csum, delta) ->
    Printf.printf "obs overhead gate (<50%% disabled, sequential sssp %.1f -> %.1f ms): %s (%+.2f%%)\n"
      bsum csum (String.uppercase_ascii obs_gate_status) (100.0 *. delta));
  Printf.printf "enabled tracing on %s: %.2f -> %.2f ms (%d spans, %+.2f%%)\n" en_name en_off en_on
    en_spans
    (100.0 *. (en_on -. en_off) /. en_off);
  if (pipeline_enforced && not pipeline_ok) || not parallel_ok || not bucket_ok || not default_ok
     || not obs_gate_ok
  then exit 1
