(* Benchmark gate for the domain-parallel routing pipeline (DESIGN.md
   section 12): times the SSSP + cycle-breaking pipeline sequentially
   (the legacy per-destination recurrence) and through the
   batched-snapshot parallel driver, per topology, and writes
   bench_results/routing_parallel.json with per-stage times and speedup
   fields.

   The >= 2x pipeline-speedup target on the 4096-endpoint XGFT is only
   enforceable when the machine actually has domains to spend: with
   fewer than 4 hardware domains the gate is recorded as skipped in the
   JSON (and the exit code stays 0) rather than reporting a number the
   hardware cannot produce. The parallel path still runs — on at least
   2 domains — so this doubles as a smoke test of the pool machinery. *)

let time_best f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (1000.0 *. !best, Option.get !result)

(* ------------------------------------------------------------------ *)
(* Workloads: the cdg_bench trio, routed toward a sampled destination
   subset so the big fabrics stay tractable.                            *)
(* ------------------------------------------------------------------ *)

type workload = {
  name : string;
  graph : Graph.t;
  dsts : int array;
}

let build_workload name g ~num_dsts =
  let terminals = Graph.terminals g in
  let nt = Array.length terminals in
  let num_dsts = min num_dsts nt in
  let dsts = Array.init num_dsts (fun j -> terminals.(j * nt / num_dsts)) in
  { name; graph = g; dsts }

(* ------------------------------------------------------------------ *)
(* The pipeline: SSSP toward the destination subset, then path
   extraction into a route store and offline cycle-breaking
   (Algorithm 2) — the work fabric_tool does per routing pass.          *)
(* ------------------------------------------------------------------ *)

let sssp_stage ?batch ?domains ?pool w () =
  let weights = Sssp.initial_weights w.graph in
  let ft = Ftable.create w.graph ~algorithm:"bench" in
  (match Sssp.route_destinations ?batch ?domains ?pool w.graph ~weights ~ft ~dsts:w.dsts with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "%s: routing failed: %s" w.name msg));
  ft

let break_stage w ft () =
  let terminals = Graph.terminals w.graph in
  let num_dsts = Array.length w.dsts in
  let store = Route_store.create w.graph ~capacity:(Array.length terminals * num_dsts) in
  Array.iteri
    (fun si src ->
      Array.iteri
        (fun j dst ->
          if src <> dst then
            let pair = (si * num_dsts) + j in
            if not (Ftable.path_into ft store ~pair ~src ~dst) then
              failwith (Printf.sprintf "%s: no route %d -> %d" w.name src dst))
        w.dsts)
    terminals;
  match Layers.assign_store store ~max_layers:64 ~heuristic:Heuristic.Weakest with
  | Ok o -> o.Layers.layers_used
  | Error msg -> failwith (Printf.sprintf "%s: cycle breaking failed: %s" w.name msg)

type row = {
  wname : string;
  endpoints : int;
  num_dsts : int;
  seq_sssp_ms : float;
  seq_break_ms : float;
  par_sssp_ms : float;
  par_break_ms : float;
  layers : int;
}

let sssp_speedup r = r.seq_sssp_ms /. r.par_sssp_ms

let pipeline_speedup r =
  (r.seq_sssp_ms +. r.seq_break_ms) /. (r.par_sssp_ms +. r.par_break_ms)

let measure ~batch ~pool w =
  Printf.eprintf "measuring %s...\n%!" w.name;
  let seq_sssp_ms, seq_ft = time_best (sssp_stage w) in
  let seq_break_ms, seq_layers = time_best (break_stage w seq_ft) in
  let par_sssp_ms, par_ft = time_best (sssp_stage ~batch ~pool w) in
  let par_break_ms, par_layers = time_best (break_stage w par_ft) in
  (* Determinism smoke: a second parallel run must reproduce the table
     bit-for-bit (test/test_parallel.ml proves the full contract). *)
  ignore seq_ft;
  let repeat_ft = sssp_stage ~batch ~pool w () in
  if (Ftable.diff par_ft repeat_ft).Ftable.entries_changed <> 0 then
    failwith (w.name ^ ": parallel pipeline not deterministic");
  {
    wname = w.name;
    endpoints = Graph.num_terminals w.graph;
    num_dsts = Array.length w.dsts;
    seq_sssp_ms;
    seq_break_ms;
    par_sssp_ms;
    par_break_ms;
    layers = max seq_layers par_layers;
  }

let json_row r =
  Printf.sprintf
    {|    {
      "name": "%s", "endpoints": %d, "destinations": %d, "layers": %d,
      "sssp_ms": {"sequential": %.3f, "parallel": %.3f, "speedup": %.2f},
      "break_ms": {"sequential": %.3f, "parallel": %.3f},
      "pipeline_ms": {"sequential": %.3f, "parallel": %.3f, "speedup": %.2f}
    }|}
    r.wname r.endpoints r.num_dsts r.layers r.seq_sssp_ms r.par_sssp_ms (sssp_speedup r)
    r.seq_break_ms r.par_break_ms
    (r.seq_sssp_ms +. r.seq_break_ms)
    (r.par_sssp_ms +. r.par_break_ms)
    (pipeline_speedup r)

(* ------------------------------------------------------------------ *)
(* Observability overhead (DESIGN.md section 13): the same pipeline with
   obs compiled in but disabled must stay within 3% of the previous
   run's sequential times (read from routing_parallel.json before this
   run overwrites it), and the cost of enabled tracing is recorded
   informationally.                                                     *)
(* ------------------------------------------------------------------ *)

(* name -> sequential pipeline ms of the previous routing_parallel.json *)
let read_baseline path =
  if not (Sys.file_exists path) then None
  else
    let text = In_channel.with_open_text path In_channel.input_all in
    match Obs.Json.of_string text with
    | Error _ -> None
    | Ok doc ->
      let open Obs.Json in
      let rows =
        match member "topologies" doc with
        | Some j -> Option.value ~default:[] (to_list j)
        | None -> []
      in
      let entry row =
        match (member "name" row, member "pipeline_ms" row) with
        | Some name, Some pipe -> (
          match (to_str name, Option.bind (member "sequential" pipe) to_float) with
          | Some n, Some ms -> Some (n, ms)
          | _ -> None)
        | _ -> None
      in
      let entries = List.filter_map entry rows in
      if entries = [] then None else Some entries

let measure_enabled_overhead w =
  Printf.eprintf "measuring %s with tracing enabled...\n%!" w.name;
  let pipeline () =
    let ft = sssp_stage w () in
    ignore (break_stage w ft ())
  in
  let off_ms, () = time_best pipeline in
  let spans = Obs.Registry.counter ~registry:(Obs.Registry.create ()) "bench.spans" in
  let on_ms, () =
    Obs.Control.with_enabled true (fun () ->
        Obs.Trace.with_sink (Obs.Trace.counting_sink spans) (fun () -> time_best pipeline))
  in
  (w.name, off_ms, on_ms, Obs.Counter.value spans)

let () =
  let available = Domain.recommended_domain_count () in
  let domains = max 2 (min available 4) in
  let batch = Sssp.recommended_batch in
  let baseline = read_baseline "bench_results/routing_parallel.json" in
  let workloads =
    [
      build_workload "xgft-4096"
        (Topo_xgft.make ~ms:[| 64; 64 |] ~ws:[| 1; 32 |] ~endpoints:4096)
        ~num_dsts:64;
      build_workload "torus-16x16"
        (fst (Topo_torus.torus ~dims:[| 16; 16 |] ~terminals_per_switch:4))
        ~num_dsts:128;
      build_workload "torus-64x64"
        (fst (Topo_torus.torus ~dims:[| 64; 64 |] ~terminals_per_switch:1))
        ~num_dsts:16;
    ]
  in
  (* Allocator warmup, as in cdg_bench: first-touch page faults would
     bill whichever pipeline runs first. *)
  List.iter (fun w -> ignore (sssp_stage w ())) workloads;
  let pool = Sssp.create_pool ~domains () in
  let rows =
    Fun.protect
      ~finally:(fun () -> Sssp.destroy_pool pool)
      (fun () -> List.map (measure ~batch ~pool) workloads)
  in
  List.iter
    (fun r ->
      Printf.printf
        "%-12s %5d endpoints, %3d dsts | sssp %8.2f vs %8.2f ms (%.2fx) | break %8.2f vs %8.2f ms \
         | pipeline %.2fx\n"
        r.wname r.endpoints r.num_dsts r.seq_sssp_ms r.par_sssp_ms (sssp_speedup r) r.seq_break_ms
        r.par_break_ms (pipeline_speedup r))
    rows;
  let big = List.find (fun r -> r.endpoints >= 4096) rows in
  let gate_enforced = available >= 4 in
  let gate_ok = pipeline_speedup big >= 2.0 in
  let gate_status =
    if not gate_enforced then
      Printf.sprintf "skipped: %d hardware domain%s available (gate needs >= 4)" available
        (if available = 1 then "" else "s")
    else if gate_ok then "pass"
    else "fail"
  in
  (try
     if not (Sys.file_exists "bench_results") then Unix.mkdir "bench_results" 0o755;
     let oc = open_out "bench_results/routing_parallel.json" in
     Printf.fprintf oc
       "{\n  \"benchmark\": \"routing_parallel\",\n  \"domains_available\": %d,\n  \
        \"domains_used\": %d,\n  \"batch\": %d,\n  \"topologies\": [\n%s\n  ],\n  \
        \"gate\": {\"target\": \"pipeline speedup >= 2.0 on %s with >= 4 domains\", \"status\": \
        \"%s\"}\n}\n"
       available domains batch
       (String.concat ",\n" (List.map json_row rows))
       big.wname gate_status;
     close_out oc
   with Unix.Unix_error _ | Sys_error _ -> prerr_endline "warning: could not write bench_results");
  Printf.printf "speedup gate (>= 2x pipeline on %s, %d domains available): %s\n" big.wname
    available (String.uppercase_ascii gate_status);
  (* ---- observability overhead ---- *)
  let disabled_cmp =
    match baseline with
    | None -> None
    | Some base ->
      let matched =
        List.filter_map
          (fun r ->
            Option.map
              (fun b -> (r.wname, b, r.seq_sssp_ms +. r.seq_break_ms))
              (List.assoc_opt r.wname base))
          rows
      in
      if matched = [] then None
      else
        let bsum = List.fold_left (fun a (_, b, _) -> a +. b) 0.0 matched in
        let csum = List.fold_left (fun a (_, _, c) -> a +. c) 0.0 matched in
        Some (matched, bsum, csum, (csum -. bsum) /. bsum)
  in
  let obs_gate_ok = match disabled_cmp with None -> true | Some (_, _, _, d) -> d < 0.03 in
  let obs_gate_status =
    match disabled_cmp with
    | None -> "skipped: no baseline"
    | Some _ when obs_gate_ok -> "pass"
    | Some _ -> "fail"
  in
  (* the smallest workload carries the enabled-tracing measurement; the
     number is informational, not a gate *)
  let en_name, en_off, en_on, en_spans =
    measure_enabled_overhead (List.nth workloads (List.length workloads - 1))
  in
  let overhead_json =
    let open Obs.Json in
    Obj
      [
        ("benchmark", Str "obs_overhead");
        ( "disabled",
          Obj
            (( "gate",
               Str
                 (Printf.sprintf "sequential pipeline with obs compiled in but disabled within 3%% \
                                  of the previous run: %s" obs_gate_status) )
            ::
            (match disabled_cmp with
            | None -> []
            | Some (matched, bsum, csum, delta) ->
              [
                ("baseline_pipeline_ms", Num bsum);
                ("current_pipeline_ms", Num csum);
                ("overhead_fraction", Num delta);
                ( "topologies",
                  Obj
                    (List.map
                       (fun (n, b, c) ->
                         (n, Obj [ ("baseline_ms", Num b); ("current_ms", Num c) ]))
                       matched) );
              ])) );
        ( "enabled",
          Obj
            [
              ("workload", Str en_name);
              ("disabled_ms", Num en_off);
              ("traced_ms", Num en_on);
              ("spans", Num (float_of_int en_spans));
              ("overhead_fraction", Num ((en_on -. en_off) /. en_off));
            ] );
      ]
  in
  (try
     Out_channel.with_open_text "bench_results/obs_overhead.json" (fun oc ->
         Out_channel.output_string oc (Obs.Json.to_string overhead_json);
         Out_channel.output_char oc '\n')
   with Sys_error _ -> prerr_endline "warning: could not write bench_results/obs_overhead.json");
  (match disabled_cmp with
  | None -> Printf.printf "obs overhead gate: SKIPPED (no baseline)\n"
  | Some (_, bsum, csum, delta) ->
    Printf.printf "obs overhead gate (<3%% disabled, sequential pipeline %.1f -> %.1f ms): %s (%+.2f%%)\n"
      bsum csum (String.uppercase_ascii obs_gate_status) (100.0 *. delta));
  Printf.printf "enabled tracing on %s: %.2f -> %.2f ms (%d spans, %+.2f%%)\n" en_name en_off en_on
    en_spans
    (100.0 *. (en_on -. en_off) /. en_off);
  if (gate_enforced && not gate_ok) || not obs_gate_ok then exit 1
