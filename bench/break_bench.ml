(* Benchmark gate for the cycle-break engines (DESIGN.md section 17):
   the SCC-condensation engine vs the one-cycle-at-a-time DFS oracle,
   sequentially and across domains, with the per-stage
   condense/evict/rebuild split read from the always-on [layers.*]
   timers. Destinations are sampled at an even stride across the
   terminal range — contiguous blocks on a big torus produce acyclic
   CDGs, which would make break time a measure of nothing.

   Writes bench_results/cycle_break.json. Gates:

   - SCC engine >= 2x the DFS oracle on break time for torus-16x16 and
     torus-64x64;
   - layers_used within +1 of the oracle on every workload;
   - parallel SCC planning >= 0.9x sequential everywhere (a 10% noise
     allowance; with one hardware domain both run the same code path,
     so this is a same-vs-same tripwire there).

   [--quick] runs a seconds-long single-workload engine-parity smoke
   instead (wired into `make check`): both engines must certify and
   agree on layers within +1; nothing is written. [--probe] repeats
   the SCC assignment on one workload printing wall time and GC deltas
   per round — a diagnostic for heap-regime swings, no gates. *)

let timer_sum name =
  match Obs.Registry.find_timer (Obs.Registry.default ()) name with
  | Some t -> Obs.Timer.sum_s t
  | None -> 0.0

type stages = {
  condense_ms : float;
  evict_ms : float;
  rebuild_ms : float;
}

type run = {
  wall_ms : float;
  stages : stages;
  layers : int;
  broken : int;
}

let single_run f =
  let c0 = timer_sum "layers.condense" in
  let e0 = timer_sum "layers.evict" in
  let r0 = timer_sum "layers.rebuild" in
  let t0 = Unix.gettimeofday () in
  let outcome = f () in
  let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  {
    wall_ms;
    stages =
      {
        condense_ms = 1000.0 *. (timer_sum "layers.condense" -. c0);
        evict_ms = 1000.0 *. (timer_sum "layers.evict" -. e0);
        rebuild_ms = 1000.0 *. (timer_sum "layers.rebuild" -. r0);
      };
    layers = outcome.Layers.layers_used;
    broken = outcome.Layers.cycles_broken;
  }

(* Interleaved best-of-N (the routing_bench time_race discipline): the
   variants being compared alternate within each round, so all of them
   sample the same heap and GC phase instead of one variant inheriting
   the allocation debt of another. The stage split comes from each
   variant's winning round. *)
let race_runs ~rounds fs =
  let best = Array.make (Array.length fs) None in
  for _ = 1 to rounds do
    Gc.compact ();
    Array.iteri
      (fun i f ->
        let r = single_run f in
        if match best.(i) with None -> true | Some b -> r.wall_ms < b.wall_ms then
          best.(i) <- Some r)
      fs
  done;
  Array.map Option.get best

type workload = {
  name : string;
  gated_2x : bool; (* the torus workloads carry the >= 2x gate *)
  store : Route_store.t;
  pairs : int;
  cdg_edges : int;
}

(* Route every terminal toward [num_dsts] destinations sampled at an
   even stride, then extract all pairs into a store. *)
let build_workload name g ~num_dsts ~gated_2x =
  Printf.eprintf "building %s...\n%!" name;
  let terminals = Graph.terminals g in
  let nt = Array.length terminals in
  let num_dsts = min num_dsts nt in
  let dsts = Array.init num_dsts (fun i -> terminals.(i * nt / num_dsts)) in
  let weights = Sssp.initial_weights g in
  let ft = Ftable.create g ~algorithm:"bench" in
  (match Sssp.route_destinations ~batch:Sssp.recommended_batch g ~weights ~ft ~dsts with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "%s: routing failed: %s" name msg));
  let store = Route_store.create g ~capacity:(nt * num_dsts) in
  Array.iteri
    (fun si src ->
      Array.iteri
        (fun j dst ->
          if src <> dst then
            if not (Ftable.path_into ft store ~pair:((si * num_dsts) + j) ~src ~dst) then
              failwith (Printf.sprintf "%s: no route %d -> %d" name src dst))
        dsts)
    terminals;
  let cdg_edges = Cdg.num_edges (Cdg.of_store store) in
  { name; gated_2x; store; pairs = Route_store.num_paths store; cdg_edges }

let assign w ~engine ~domains () =
  match
    Layers.assign_store ~engine ~domains w.store ~max_layers:64 ~heuristic:Heuristic.Weakest
  with
  | Ok o -> o
  | Error msg -> failwith (Printf.sprintf "%s: cycle breaking failed: %s" w.name msg)

type row = {
  w : workload;
  dfs : run;
  scc_seq : run;
  scc_par : run;
}

let scc_vs_dfs r = r.dfs.wall_ms /. r.scc_seq.wall_ms

let par_vs_seq r = r.scc_seq.wall_ms /. r.scc_par.wall_ms

(* [build] runs here so each workload's store is dead before the next
   one allocates: keeping every store alive at once puts the major heap
   in a regime where the CDG builds pay seconds of GC instead of
   milliseconds. *)
let measure ~domains ~rounds build =
  let w = build () in
  Printf.eprintf "measuring %s (%d pairs, %d CDG edges)...\n%!" w.name w.pairs w.cdg_edges;
  let runs =
    race_runs ~rounds
      [|
        assign w ~engine:`Dfs ~domains:1;
        assign w ~engine:`Scc ~domains:1;
        assign w ~engine:`Scc ~domains;
      |]
  in
  { w; dfs = runs.(0); scc_seq = runs.(1); scc_par = runs.(2) }

let json_run r =
  let open Obs.Json in
  Obj
    [
      ("break_ms", Num r.wall_ms);
      ( "stage_ms",
        Obj
          [
            ("condense", Num r.stages.condense_ms);
            ("evict", Num r.stages.evict_ms);
            ("rebuild", Num r.stages.rebuild_ms);
          ] );
      ("layers_used", Num (float_of_int r.layers));
      ("cycles_broken", Num (float_of_int r.broken));
    ]

let json_row r =
  let open Obs.Json in
  Obj
    [
      ("name", Str r.w.name);
      ("pairs", Num (float_of_int r.w.pairs));
      ("cdg_edges", Num (float_of_int r.w.cdg_edges));
      ("dfs", json_run r.dfs);
      ("scc_sequential", json_run r.scc_seq);
      ("scc_parallel", json_run r.scc_par);
      ("scc_vs_dfs", Num (scc_vs_dfs r));
      ("par_vs_seq", Num (par_vs_seq r));
      ("layers_delta", Num (float_of_int (r.scc_seq.layers - r.dfs.layers)));
    ]

let run_quick () =
  (* Engine-parity smoke for `make check`: small fabric, one round. *)
  let w =
    build_workload "torus-8x8"
      (fst (Topo_torus.torus ~dims:[| 8; 8 |] ~terminals_per_switch:2))
      ~num_dsts:64 ~gated_2x:false
  in
  let dfs = assign w ~engine:`Dfs ~domains:1 () in
  let scc = assign w ~engine:`Scc ~domains:1 () in
  let ok = scc.Layers.layers_used <= dfs.Layers.layers_used + 1 in
  Printf.printf "break smoke %-10s dfs %d layer(s) / %d broken, scc %d layer(s) / %d evicted: %s\n"
    w.name dfs.Layers.layers_used dfs.Layers.cycles_broken scc.Layers.layers_used
    scc.Layers.cycles_broken
    (if ok then "ok" else "MISMATCH");
  if not ok then begin
    Printf.printf "break engine smoke: FAIL\n";
    exit 1
  end;
  Printf.printf "break engine smoke: PASS\n"

let run_probe () =
  let w =
    build_workload "torus-16x16"
      (fst (Topo_torus.torus ~dims:[| 16; 16 |] ~terminals_per_switch:4))
      ~num_dsts:128 ~gated_2x:true
  in
  for i = 1 to 12 do
    let s = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let o = assign w ~engine:`Scc ~domains:1 () in
    let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    let s' = Gc.quick_stat () in
    Printf.printf "round %2d: %8.2f ms (%d layers) minor+%d major+%d heap %.1fMB\n%!" i ms
      o.Layers.layers_used
      (s'.Gc.minor_collections - s.Gc.minor_collections)
      (s'.Gc.major_collections - s.Gc.major_collections)
      (float_of_int s'.Gc.heap_words *. 8e-6)
  done

let () =
  if Array.exists (( = ) "--probe") Sys.argv then begin
    run_probe ();
    exit 0
  end;
  if Array.exists (( = ) "--quick") Sys.argv then begin
    run_quick ();
    exit 0
  end;
  let available = Domain.recommended_domain_count () in
  let domains = max 1 (min available 4) in
  let workloads =
    [
      (fun () ->
        build_workload "torus-16x16"
          (fst (Topo_torus.torus ~dims:[| 16; 16 |] ~terminals_per_switch:4))
          ~num_dsts:128 ~gated_2x:true);
      (fun () ->
        build_workload "xgft-1024"
          (Topo_xgft.make ~ms:[| 16; 64 |] ~ws:[| 1; 16 |] ~endpoints:1024)
          ~num_dsts:64 ~gated_2x:false);
      (fun () ->
        build_workload "torus-64x64"
          (fst (Topo_torus.torus ~dims:[| 64; 64 |] ~terminals_per_switch:2))
          ~num_dsts:32 ~gated_2x:true);
    ]
  in
  let rows = List.map (measure ~domains ~rounds:3) workloads in
  List.iter
    (fun r ->
      Printf.printf
        "%-12s %7d pairs | dfs %8.2f ms (%d layers, %d broken) | scc %8.2f ms (%d layers, %d \
         evicted) %.2fx | par %8.2f ms %.2fx\n"
        r.w.name r.w.pairs r.dfs.wall_ms r.dfs.layers r.dfs.broken r.scc_seq.wall_ms
        r.scc_seq.layers r.scc_seq.broken (scc_vs_dfs r) r.scc_par.wall_ms (par_vs_seq r);
      Printf.printf "             stages dfs c/e/r %.1f/%.1f/%.1f | scc %.1f/%.1f/%.1f\n"
        r.dfs.stages.condense_ms r.dfs.stages.evict_ms r.dfs.stages.rebuild_ms
        r.scc_seq.stages.condense_ms r.scc_seq.stages.evict_ms r.scc_seq.stages.rebuild_ms)
    rows;
  (* ---- gates ---- *)
  let speed_ok = List.for_all (fun r -> (not r.w.gated_2x) || scc_vs_dfs r >= 2.0) rows in
  let layers_ok = List.for_all (fun r -> r.scc_seq.layers <= r.dfs.layers + 1) rows in
  let par_ok = List.for_all (fun r -> par_vs_seq r >= 0.9) rows in
  let status ok = if ok then "pass" else "fail" in
  let doc =
    let open Obs.Json in
    Obj
      [
        ("benchmark", Str "cycle_break");
        ("domains_available", Num (float_of_int available));
        ("domains_used", Num (float_of_int domains));
        ("workloads", List (List.map json_row rows));
        ( "gates",
          Obj
            [
              ( "scc_2x",
                Obj
                  [
                    ("target", Str "scc >= 2x dfs break time on the torus workloads");
                    ("status", Str (status speed_ok));
                  ] );
              ( "layers_within_1",
                Obj
                  [
                    ("target", Str "scc layers_used <= dfs + 1 on every workload");
                    ("status", Str (status layers_ok));
                  ] );
              ( "par_not_slower",
                Obj
                  [
                    ("target", Str "parallel scc >= 0.9x sequential on every workload");
                    ("status", Str (status par_ok));
                  ] );
            ] );
      ]
  in
  (try
     if not (Sys.file_exists "bench_results") then Unix.mkdir "bench_results" 0o755;
     Out_channel.with_open_text "bench_results/cycle_break.json" (fun oc ->
         Out_channel.output_string oc (Obs.Json.to_string doc);
         Out_channel.output_char oc '\n')
   with Unix.Unix_error _ | Sys_error _ -> prerr_endline "warning: could not write bench_results");
  Printf.printf "scc speed gate (>= 2x dfs on tori): %s\n" (String.uppercase_ascii (status speed_ok));
  Printf.printf "layers gate (scc <= dfs + 1 everywhere): %s\n"
    (String.uppercase_ascii (status layers_ok));
  Printf.printf "parallel gate (>= 0.9x sequential): %s\n" (String.uppercase_ascii (status par_ok));
  if not (speed_ok && layers_ok && par_ok) then exit 1
